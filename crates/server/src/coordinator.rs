//! The serving coordinator: accepts jobs, subtracts each grid against the
//! point-level result cache ([`crate::points::PointStore`]), decomposes the
//! uncached remainder into [`bitmod::shard::ShardSpec`] work units, leases
//! the units to executors (in-process threads and remote
//! `bitmod-cli worker --attach` processes alike), assembles cached and
//! freshly returned [`ShardReport`]s bit-identically via
//! [`bitmod::shard::assemble_report`], and journals every transition to an
//! optional state directory so queued and in-flight jobs — and every
//! already-computed point — survive restarts.
//!
//! This is the supervisory half of the coordinator/executor split;
//! [`crate::executor`] holds both executor kinds.  The coordinator never
//! runs a sweep itself — it only hands out work, collects results, requeues
//! the shards of expired leases, and wakes `watch` streams on progress.

use crate::executor;
use crate::job::{JobQueue, JobStatus, JobView, ShardLanding, SubmitOutcome, WorkAssignment};
use crate::journal::{Journal, JournalEvent, JournalFlush};
use bitmod::shard::ShardReport;
use bitmod::sweep::{SweepAlgoCache, SweepConfig, SweepReport};
use bitmod_llm::eval::HarnessPool;
use serde::{Deserialize, Serialize};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Tunables of a serving coordinator.
#[derive(Debug, Clone)]
pub struct CoordinatorConfig {
    /// In-process executor threads (each shard run is itself rayon-parallel,
    /// so more than a few rarely helps).  `0` runs a pure coordinator that
    /// depends entirely on remote attached executors.
    pub workers: usize,
    /// Work units per job: `1` dispatches each sweep whole, `n > 1`
    /// partitions every grid with [`bitmod::shard::ShardSpec`] so several executors can
    /// share one job; the merge is bit-identical either way.
    pub shards: usize,
    /// Maximum completed reports kept in the dedup/result cache; the
    /// oldest-finished job is evicted first (`bitmod-cli serve --cache-cap`).
    /// `usize::MAX` (the default) never evicts.
    pub cache_cap: usize,
    /// How long a remote executor's lease survives without a heartbeat
    /// before its shard is requeued (`bitmod-cli serve --lease-ms`).
    pub lease_timeout: Duration,
    /// Journal directory (`bitmod-cli serve --state-dir`); `None` keeps all
    /// state in memory, exactly as before the journal existed.
    pub state_dir: Option<PathBuf>,
}

impl Default for CoordinatorConfig {
    fn default() -> Self {
        Self {
            workers: 2,
            shards: 1,
            cache_cap: usize::MAX,
            lease_timeout: Duration::from_millis(10_000),
            state_dir: None,
        }
    }
}

/// Aggregate coordinator counters, reported by `ping`.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CoordinatorStats {
    /// Total jobs (all states).
    pub jobs: usize,
    /// Jobs waiting for an executor.
    pub queued: usize,
    /// Jobs with at least one shard leased or completed.
    pub running: usize,
    /// Jobs finished successfully.
    pub done: usize,
    /// Jobs that failed.
    pub failed: usize,
    /// Submissions absorbed by dedup instead of spawning a job.
    pub deduped_submissions: usize,
    /// Completed jobs evicted from the result cache (FIFO, capped
    /// coordinators only).
    pub evicted_jobs: usize,
    /// Distinct harnesses in the shared pool.
    pub pool_harnesses: usize,
    /// In-process executor threads.
    pub workers: usize,
    /// Work units per job.
    pub shards: usize,
    /// Registered executors (in-process + remote).
    pub executors: usize,
    /// Remote executors among them.
    pub remote_executors: usize,
    /// Outstanding leases.
    pub active_leases: usize,
    /// Shard work units waiting for an executor (the dispatch backlog a
    /// load generator watches for saturation).
    pub queue_depth: usize,
    /// Shard work units currently leased to an executor.  Equal to
    /// `active_leases` today, but named for what it gauges: with
    /// `queue_depth` it makes `ping` a complete work-unit census.
    pub in_flight_shards: usize,
    /// Shards requeued after a lease expired.
    pub requeued_shards: usize,
    /// Points currently held by the point-level result cache.
    pub points_cached: usize,
    /// Point-store lookups served from cache since startup.
    pub point_hits: usize,
    /// Point-store lookups that required computation since startup.
    pub point_misses: usize,
    /// Algorithm sides currently held by the algorithm-group cache.
    pub algo_cached: usize,
    /// Algorithm-cache lookups served from cache since startup (in-process
    /// executors only; remote workers keep their own per-process cache).
    pub algo_hits: u64,
    /// Algorithm sides computed fresh since startup (in-process executors).
    pub algo_misses: u64,
}

/// Interior state guarded by one lock: the job/lease queue plus the journal
/// appender.  Appending under the lock only *sequences* the event (the
/// writer thread serializes and flushes it off-lock), which keeps the
/// on-disk event order identical to the state-transition order without
/// paying report-serialization time inside the lock.
#[derive(Debug)]
struct State {
    queue: JobQueue,
    journal: Option<Journal>,
}

impl State {
    /// Sequences `event` for the journal writer; returns its sequence
    /// number (0 when no journal is configured).  Callers that must not
    /// return before the event is durable pass the number to
    /// [`Coordinator::await_journal`] *after* releasing the state lock.
    fn journal(&mut self, event: JournalEvent) -> u64 {
        match self.journal.as_mut() {
            Some(j) => j.append(&event),
            None => 0,
        }
    }
}

/// The serving coordinator: shared state plus the harness pool in-process
/// executors batch synthesis through.
///
/// Construction does not spawn anything; [`Coordinator::start`] replays the
/// journal (when a state directory is configured) and returns a handle
/// owning the in-process executor threads.
///
/// ```
/// use bitmod::llm::config::LlmModel;
/// use bitmod::llm::proxy::ProxyConfig;
/// use bitmod::sweep::SweepConfig;
/// use bitmod_server::coordinator::{Coordinator, CoordinatorConfig};
///
/// let handle = Coordinator::start(CoordinatorConfig {
///     workers: 1,
///     shards: 2,
///     ..CoordinatorConfig::default()
/// });
/// let cfg = SweepConfig::new(vec![LlmModel::Phi2B], vec![4])
///     .with_proxy(ProxyConfig::tiny());
/// let out = handle.coordinator().submit(&cfg);
/// handle.coordinator().drain();
/// let report = handle.coordinator().result(&out.job_id).unwrap().unwrap();
/// assert_eq!(report.records.len(), 2);
/// handle.shutdown();
/// ```
#[derive(Debug)]
pub struct Coordinator {
    state: Mutex<State>,
    /// Wakes executors when work is queued or shutdown is requested.
    wake: Condvar,
    /// Wakes `watch` streams and [`Coordinator::drain`] on any progress.
    progress: Condvar,
    /// Set by [`CoordinatorHandle::halt`]: executors stop leasing
    /// immediately instead of draining the queue (the crash-test hook).
    abort: AtomicBool,
    pool: HarnessPool,
    /// Daemon-lifetime algorithm-side cache shared by every in-process
    /// executor: one completed quant/eval per algorithm group, keyed by
    /// [`bitmod::sweep::AlgoKey`] (+ proxy + seed).  Ownership-evicted in
    /// lockstep with the point store when a job leaves the result cache.
    algos: SweepAlgoCache,
    /// The journal writer's flush tracker (when a journal is in use):
    /// blocking on it after releasing the state lock restores
    /// durability-at-return for submit/complete/fail without serializing
    /// reports under the lock.
    journal_flush: Option<Arc<JournalFlush>>,
    config: CoordinatorConfig,
}

/// Upper bound on cached algorithm sides.  Each entry holds per-layer
/// statistics and scalar metrics (a few hundred bytes), so this caps memory
/// in the single-digit-MB range while comfortably covering every distinct
/// algorithm group a realistic multi-job workload cycles through.
pub const ALGO_CACHE_CAP: usize = 1024;

/// Owns a running coordinator's in-process executor threads; dropping
/// without [`CoordinatorHandle::shutdown`] detaches them (they exit at
/// process end).
#[derive(Debug)]
pub struct CoordinatorHandle {
    coordinator: Arc<Coordinator>,
    workers: Vec<JoinHandle<()>>,
}

impl CoordinatorHandle {
    /// The coordinator this handle controls.
    pub fn coordinator(&self) -> &Arc<Coordinator> {
        &self.coordinator
    }

    /// Requests shutdown and joins every in-process executor.  Executors
    /// drain the queue before exiting, so jobs accepted before the request
    /// still complete (remote executors observe `shutting_down` on their
    /// next lease poll).
    pub fn shutdown(self) {
        self.coordinator.request_shutdown();
        for w in self.workers {
            let _ = w.join();
        }
        self.coordinator.sync_journal();
    }

    /// Stops in-process executors *without* draining: they finish (at most)
    /// the shard they hold and exit, leaving queued work units and the
    /// journal exactly as they are.  This is the closest a test can get to
    /// `kill -9` without actually killing the process — crash-recovery
    /// tests restart from the state directory afterwards.
    pub fn halt(self) {
        self.coordinator.abort.store(true, Ordering::SeqCst);
        {
            // Also flag shutdown so blocking waits wake immediately.
            let mut state = self.coordinator.lock();
            state.queue.shutting_down = true;
        }
        self.coordinator.wake.notify_all();
        self.coordinator.progress.notify_all();
        for w in self.workers {
            let _ = w.join();
        }
        // Everything journaled before the halt must be on disk before the
        // state dir can be reopened (the crash-recovery tests restart here).
        self.coordinator.sync_journal();
    }
}

impl Coordinator {
    /// Builds the coordinator — replaying `state_dir`'s journal when
    /// configured — and spawns `config.workers` in-process executors.
    pub fn start(config: CoordinatorConfig) -> CoordinatorHandle {
        let config = CoordinatorConfig {
            workers: config.workers,
            shards: config.shards.max(1),
            // A cap of zero would evict every report before any client could
            // fetch it; clamp like shards.
            cache_cap: config.cache_cap.max(1),
            lease_timeout: config.lease_timeout.max(Duration::from_millis(100)),
            state_dir: config.state_dir,
        };
        let mut queue = JobQueue::new(config.cache_cap, config.shards);
        let journal = match &config.state_dir {
            None => None,
            Some(dir) => match Journal::open(dir) {
                Ok((journal, replay)) => {
                    if replay.skipped_lines > 0 {
                        eprintln!(
                            "[serve] journal {}: skipped {} unparseable line(s) (torn tail?)",
                            journal.path().display(),
                            replay.skipped_lines
                        );
                    }
                    replay_events(&mut queue, replay.events);
                    Some(journal)
                }
                Err(e) => {
                    // Refusing to serve is worse than serving memory-only;
                    // say so loudly and continue.
                    eprintln!("[serve] state dir unusable, running memory-only: {e}");
                    None
                }
            },
        };
        let journal_flush = journal.as_ref().map(Journal::flush_handle);
        let coordinator = Arc::new(Coordinator {
            state: Mutex::new(State { queue, journal }),
            wake: Condvar::new(),
            progress: Condvar::new(),
            abort: AtomicBool::new(false),
            pool: HarnessPool::new(),
            algos: SweepAlgoCache::with_cap(ALGO_CACHE_CAP),
            journal_flush,
            config,
        });
        let workers = (0..coordinator.config.workers)
            .map(|i| {
                let c = Arc::clone(&coordinator);
                std::thread::spawn(move || executor::run_local(&c, i))
            })
            .collect();
        CoordinatorHandle {
            coordinator,
            workers,
        }
    }

    fn lock(&self) -> MutexGuard<'_, State> {
        self.state.lock().expect("coordinator lock")
    }

    /// The harness pool shared by every in-process executor.
    pub fn pool(&self) -> &HarnessPool {
        &self.pool
    }

    /// The algorithm-side cache shared by every in-process executor.
    pub fn algos(&self) -> &SweepAlgoCache {
        &self.algos
    }

    /// The coordinator's configuration.
    pub fn config(&self) -> &CoordinatorConfig {
        &self.config
    }

    /// The journal file actually in use — `None` when no state dir was
    /// configured *or* when opening it failed and the coordinator fell back
    /// to memory-only (callers reporting durability must check this, not
    /// the configured path).
    pub fn journal_path(&self) -> Option<PathBuf> {
        self.lock().journal.as_ref().map(|j| j.path().to_path_buf())
    }

    /// Blocks until the journal event with sequence number `seq` is durably
    /// flushed; a no-op for `seq == 0` or a journal-less coordinator.  Call
    /// *after* releasing the state lock — this is what keeps
    /// durability-at-return while the writer thread does the I/O.
    fn await_journal(&self, seq: u64) {
        if seq == 0 {
            return;
        }
        if let Some(flush) = &self.journal_flush {
            flush.wait_for(seq);
        }
    }

    /// Blocks until everything journaled so far is durably flushed.
    pub fn sync_journal(&self) {
        let seq = {
            let state = self.lock();
            state.journal.as_ref().map_or(0, Journal::seq)
        };
        self.await_journal(seq);
    }

    /// Submits a sweep; returns the (possibly deduplicated) job id.
    pub fn submit(&self, config: &SweepConfig) -> SubmitOutcome {
        let mut state = self.lock();
        let outcome = state.queue.submit(config);
        let mut journal_seq = 0;
        if !outcome.deduped {
            let job = &state.queue.jobs[&outcome.job_id];
            let config = Box::new(job.config.clone());
            // A fully-cached grid finished inside submit(): journal the
            // completion (and the cap evictions it triggered) right behind
            // the submit event, so replay rebuilds the identical state.
            let report = (job.status == JobStatus::Done)
                .then(|| job.report.clone())
                .flatten();
            journal_seq = state.journal(JournalEvent::Submit {
                job: outcome.job_id.clone(),
                config,
            });
            if let Some(report) = report {
                journal_seq = state.journal(JournalEvent::Done {
                    job: outcome.job_id.clone(),
                    report,
                });
            }
            for evicted in &outcome.evicted {
                journal_seq = state.journal(JournalEvent::Evict {
                    job: evicted.clone(),
                });
            }
        }
        drop(state);
        self.await_journal(journal_seq);
        // Keep the algorithm cache in lockstep with the point store: a job
        // evicted from the result cache releases its algorithm sides too.
        for evicted in &outcome.evicted {
            self.algos.evict_owner(evicted);
        }
        if !outcome.deduped {
            self.wake.notify_all();
            self.progress.notify_all();
        }
        outcome
    }

    /// Snapshot of one job, or `None` for an unknown id.
    pub fn status(&self, id: &str) -> Option<JobView> {
        self.lock().queue.jobs.get(id).map(|j| j.view())
    }

    /// The completed report of a done job.  `None` for an unknown id,
    /// `Some(Err)` while the job is not (successfully) finished.
    pub fn result(&self, id: &str) -> Option<Result<Arc<SweepReport>, String>> {
        let state = self.lock();
        let job = state.queue.jobs.get(id)?;
        Some(match (&job.report, job.status) {
            (Some(r), _) => Ok(Arc::clone(r)),
            (None, JobStatus::Failed) => Err(job
                .error
                .clone()
                .unwrap_or_else(|| "job failed".to_string())),
            (None, s) => Err(format!("job is {} — result not available yet", s.name())),
        })
    }

    /// Every job, in submission order.
    pub fn list(&self) -> Vec<JobView> {
        self.lock().queue.views()
    }

    /// Atomic snapshot of one job's view *and* its report (when done) under
    /// a single lock acquisition.  `watch` streams use this instead of
    /// separate `status`/`result` calls: with a capped result cache, a job
    /// can be evicted between the two, which would make a watcher report a
    /// successfully completed job as unknown or emit a `done` event with no
    /// report.
    pub fn snapshot(&self, id: &str) -> Option<(JobView, Option<Arc<SweepReport>>)> {
        let state = self.lock();
        let job = state.queue.jobs.get(id)?;
        Some((job.view(), job.report.clone()))
    }

    /// Aggregate counters for `ping`.
    pub fn stats(&self) -> CoordinatorStats {
        let state = self.lock();
        let q = &state.queue;
        let count = |s: JobStatus| q.jobs.values().filter(|j| j.status == s).count();
        CoordinatorStats {
            jobs: q.jobs.len(),
            queued: count(JobStatus::Queued),
            running: count(JobStatus::Running),
            done: count(JobStatus::Done),
            failed: count(JobStatus::Failed),
            deduped_submissions: q.jobs.values().map(|j| j.submissions - 1).sum(),
            evicted_jobs: q.evicted,
            pool_harnesses: self.pool.len(),
            workers: self.config.workers,
            shards: self.config.shards,
            executors: q.executors.len(),
            remote_executors: q.executors.values().filter(|e| e.remote).count(),
            active_leases: q.leases.len(),
            queue_depth: q.pending.len(),
            in_flight_shards: q.leases.len(),
            requeued_shards: q.requeued,
            points_cached: q.points.len(),
            point_hits: q.points.hits(),
            point_misses: q.points.misses(),
            algo_cached: self.algos.len(),
            algo_hits: self.algos.hits(),
            algo_misses: self.algos.misses(),
        }
    }

    /// Blocks until no job is queued or running.
    ///
    /// Once shutdown is pending, queued work can strand: a pure coordinator
    /// (`workers == 0`) has nobody to run it, and even with in-process
    /// executors a job submitted *after* they drained and exited has nobody
    /// left either.  If no executor touches the queue for three lease
    /// timeouts while shutdown is pending, the remaining jobs are failed
    /// (`abandoned at shutdown`, journaled) rather than hanging the
    /// daemon's exit forever.
    pub fn drain(&self) {
        let mut state = self.lock();
        while state.queue.has_live_jobs() && !self.is_aborted() {
            self.abandon_if_stranded(&mut state);
            if !state.queue.has_live_jobs() {
                break;
            }
            state = self
                .progress
                .wait_timeout(state, Duration::from_millis(200))
                .expect("coordinator lock")
                .0;
            self.reap_locked(&mut state);
        }
    }

    /// Public face of the stranded-work escape hatch, safe to call from any
    /// wait loop (the `watch` streams use it: their connection threads are
    /// joined before [`Coordinator::drain`] ever runs, so they must be able
    /// to trigger the abandonment themselves).
    pub fn abandon_stranded_work(&self) {
        let mut state = self.lock();
        self.abandon_if_stranded(&mut state);
    }

    /// The shutdown-hang escape hatch: fails every still-live job once
    /// shutdown is pending, no lease is outstanding, and no executor has
    /// touched the queue for three lease timeouts.  (Not gated on the
    /// worker count: in-process executors exit once shutdown finds the
    /// queue empty, so a submit accepted on a still-open connection after
    /// that strands exactly like work on a pure coordinator.)
    fn abandon_if_stranded(&self, state: &mut State) {
        let stranded = state.queue.shutting_down
            && state.queue.leases.is_empty()
            && state.queue.last_executor_activity.elapsed() > self.config.lease_timeout * 3;
        if !stranded {
            return;
        }
        let live: Vec<String> = state
            .queue
            .jobs
            .values()
            .filter(|j| matches!(j.status, JobStatus::Queued | JobStatus::Running))
            .map(|j| j.id.clone())
            .collect();
        if live.is_empty() {
            return;
        }
        eprintln!(
            "[serve] shutting down with {} job(s) queued and no executor left to run them — abandoning",
            live.len()
        );
        state.queue.pending.clear();
        for id in live {
            state.queue.finish(
                &id,
                Err("abandoned at shutdown: no executor available".into()),
            );
            let event = JournalEvent::Failed {
                job: id,
                error: "abandoned at shutdown: no executor available".into(),
            };
            state.journal(event);
        }
        self.progress.notify_all();
    }

    /// Flags shutdown and wakes every executor and watcher.
    pub fn request_shutdown(&self) {
        self.lock().queue.shutting_down = true;
        self.wake.notify_all();
        self.progress.notify_all();
    }

    /// Whether shutdown has been requested.
    pub fn is_shutting_down(&self) -> bool {
        self.lock().queue.shutting_down
    }

    /// Whether [`CoordinatorHandle::halt`] aborted execution (queued work
    /// will not be drained in this process).
    pub fn is_aborted(&self) -> bool {
        self.abort.load(Ordering::SeqCst)
    }

    /// The current progress epoch; changes whenever any job or shard state
    /// changes.  `watch` streams poll with [`Coordinator::wait_progress`].
    pub fn epoch(&self) -> u64 {
        self.lock().queue.epoch
    }

    /// Blocks until the progress epoch differs from `seen` (or `timeout`
    /// elapses); returns the current epoch either way.
    pub fn wait_progress(&self, seen: u64, timeout: Duration) -> u64 {
        let deadline = Instant::now() + timeout;
        let mut state = self.lock();
        loop {
            if state.queue.epoch != seen || self.is_aborted() {
                return state.queue.epoch;
            }
            let now = Instant::now();
            if now >= deadline {
                return state.queue.epoch;
            }
            state = self
                .progress
                .wait_timeout(state, deadline - now)
                .expect("coordinator lock")
                .0;
        }
    }

    // ------------------------------------------------------------------
    // Executor-facing API (shared by in-process threads and the wire verbs)
    // ------------------------------------------------------------------

    /// Registers an executor and returns its id (`exec-1`, …).
    pub fn register_executor(&self, name: &str, remote: bool) -> String {
        self.lock().queue.register_executor(name, remote)
    }

    /// The remote lease timeout (what attach/heartbeat responses report).
    pub fn lease_timeout(&self) -> Duration {
        self.config.lease_timeout
    }

    /// Non-blocking lease attempt for a *remote* executor: requeues any
    /// expired leases first, then hands out the oldest work unit, if any.
    /// The boolean is the shutting-down flag, so pollers learn they can
    /// exit.
    pub fn try_lease(&self, executor: &str) -> (Option<WorkAssignment>, bool) {
        let mut state = self.lock();
        self.reap_locked(&mut state);
        let work = state
            .queue
            .lease_next(executor, Some(self.config.lease_timeout));
        if let Some(w) = &work {
            let event = JournalEvent::Dispatch {
                job: w.job.clone(),
                shard: w.shard,
                executor: executor.to_string(),
            };
            state.journal(event);
        }
        (work, state.queue.shutting_down)
    }

    /// Blocking lease for an *in-process* executor: waits for work, returns
    /// `None` once the queue is drained and shutdown was requested (or
    /// immediately after [`CoordinatorHandle::halt`]).
    pub fn lease_blocking(&self, executor: &str) -> Option<WorkAssignment> {
        let mut state = self.lock();
        loop {
            if self.is_aborted() {
                return None;
            }
            self.reap_locked(&mut state);
            if let Some(w) = state.queue.lease_next(executor, None) {
                let event = JournalEvent::Dispatch {
                    job: w.job.clone(),
                    shard: w.shard,
                    executor: executor.to_string(),
                };
                state.journal(event);
                return Some(w);
            }
            if state.queue.shutting_down {
                return None;
            }
            // A timeout (rather than an untimed wait) doubles as the lease
            // reaper: expired remote leases requeue even when no other
            // event fires.
            state = self
                .wake
                .wait_timeout(state, Duration::from_millis(200))
                .expect("coordinator lock")
                .0;
        }
    }

    /// Extends a remote lease; returns the refreshed timeout.
    pub fn heartbeat(&self, executor: &str, lease: u64) -> Result<Duration, String> {
        let mut state = self.lock();
        self.reap_locked(&mut state);
        state
            .queue
            .heartbeat(executor, lease, self.config.lease_timeout)?;
        Ok(self.config.lease_timeout)
    }

    /// Accepts a completed shard report from an executor, journals the
    /// landing, and — when it was the job's last shard — the merged result.
    pub fn complete_shard(
        &self,
        executor: &str,
        lease: u64,
        report: ShardReport,
    ) -> Result<ShardLanding, String> {
        let mut state = self.lock();
        let landing = state.queue.complete_shard(executor, lease, report)?;
        let mut journal_seq = 0;
        if !landing.ignored {
            let event = JournalEvent::ShardDone {
                job: landing.job.clone(),
                shard: landing.shard,
                executor: executor.to_string(),
                progress: landing.shard_progress,
                // Mid-job landings persist their full report so replay can
                // re-seed the point store; the final landing's points travel
                // in the `done` event journaled right below instead.
                report: (landing.status == JobStatus::Running)
                    .then(|| landing.report.clone())
                    .flatten(),
            };
            journal_seq = state.journal(event);
            journal_seq = journal_seq.max(self.journal_transition(&mut state, &landing));
        }
        drop(state);
        self.await_journal(journal_seq);
        for evicted in &landing.evicted {
            self.algos.evict_owner(evicted);
        }
        self.progress.notify_all();
        Ok(landing)
    }

    /// Fails the job owning `lease` (executor panic or refused work unit).
    pub fn fail_shard(
        &self,
        executor: &str,
        lease: u64,
        error: String,
    ) -> Result<ShardLanding, String> {
        let mut state = self.lock();
        let landing = state.queue.fail_shard(executor, lease, error.clone())?;
        let mut journal_seq = 0;
        if !landing.ignored {
            let event = JournalEvent::Failed {
                job: landing.job.clone(),
                error,
            };
            journal_seq = state.journal(event);
        }
        drop(state);
        self.await_journal(journal_seq);
        self.progress.notify_all();
        Ok(landing)
    }

    /// Journals a job reaching `Done`/`Failed` through a shard landing, plus
    /// any evictions the finish triggered; returns the last sequence number
    /// journaled (0 if nothing was).
    fn journal_transition(&self, state: &mut State, landing: &ShardLanding) -> u64 {
        let mut seq = 0;
        match landing.status {
            JobStatus::Done => {
                let report = state.queue.jobs[&landing.job].report.clone();
                if let Some(report) = report {
                    let event = JournalEvent::Done {
                        job: landing.job.clone(),
                        report,
                    };
                    seq = state.journal(event);
                }
            }
            JobStatus::Failed => {
                let error = state.queue.jobs[&landing.job]
                    .error
                    .clone()
                    .unwrap_or_else(|| "job failed".to_string());
                let event = JournalEvent::Failed {
                    job: landing.job.clone(),
                    error,
                };
                seq = state.journal(event);
            }
            _ => {}
        }
        for evicted in &landing.evicted {
            let event = JournalEvent::Evict {
                job: evicted.clone(),
            };
            seq = state.journal(event);
        }
        seq
    }

    /// Requeues expired leases and journals the requeues; called with the
    /// state lock held on every lease/heartbeat/drain touch point, so no
    /// dedicated reaper thread is needed.
    fn reap_locked(&self, state: &mut State) {
        let reaped = state
            .queue
            .reap_expired(Instant::now(), self.config.lease_timeout * 10);
        for (job, shard, executor) in reaped {
            eprintln!(
                "[serve] lease on {job} shard {shard} (executor {executor}) expired — requeued"
            );
            let event = JournalEvent::Requeue {
                job,
                shard,
                executor,
            };
            state.journal(event);
        }
    }
}

/// Applies replayed journal events to a fresh queue, in two passes.
///
/// Pass one walks the events in append order: submits insert their jobs
/// *without* decomposing them yet, every journaled shard report (and every
/// completed job's final report) re-seeds the point store, and done/failed
/// events finish their jobs — re-deriving result-cache evictions, and the
/// point drops they imply, under the *current* cap (which may legitimately
/// differ across restarts).  Pass two decomposes the jobs still queued at
/// the crash against the fully re-seeded store, so only their
/// not-yet-landed points re-dispatch.
fn replay_events(queue: &mut JobQueue, events: Vec<JournalEvent>) {
    for event in events {
        match event {
            JournalEvent::Submit { job, config } => {
                // The journal records canonical configs; trust but re-derive
                // the key (it is a pure function of the config).
                let key = config.cache_key();
                if let Some(n) = job
                    .strip_prefix("job-")
                    .and_then(|n| n.parse::<usize>().ok())
                {
                    queue.submitted = queue.submitted.max(n);
                }
                queue.insert_job(job, *config, key);
            }
            JournalEvent::ShardDone {
                job,
                report: Some(report),
                ..
            } => {
                // A mid-job landing that beat the crash: its points are
                // computed property, whatever became of the job.
                if let Some(j) = queue.jobs.get(&job) {
                    let (proxy, seed) = (j.config.proxy, j.config.seed);
                    queue.seed_points(&job, proxy, seed, &report);
                }
            }
            JournalEvent::Done { job, report } => {
                if let Some(j) = queue.jobs.get(&job) {
                    let (proxy, seed) = (j.config.proxy, j.config.seed);
                    // The assembled report is the landing of record: every
                    // point of a completed job enters the store, which also
                    // re-derives co-ownership of points the job originally
                    // served from cache.
                    queue.seed_sweep_points(&job, proxy, seed, &report);
                    // The replay owns the sole Arc, so this never clones.
                    let report = Arc::try_unwrap(report).unwrap_or_else(|shared| (*shared).clone());
                    queue.finish(&job, Ok(report));
                }
            }
            JournalEvent::Failed { job, error } => {
                if queue.jobs.contains_key(&job) {
                    queue.finish(&job, Err(error));
                }
            }
            // Dispatch/requeue/evict and report-less shard-dones are an
            // audit trail: the uncached shards of unfinished jobs re-run
            // from scratch (bit-identical), and evictions are re-derived
            // from the Done order and the current cache cap.
            JournalEvent::Dispatch { .. }
            | JournalEvent::ShardDone { .. }
            | JournalEvent::Requeue { .. }
            | JournalEvent::Evict { .. } => {}
        }
    }
    // With the store fully re-seeded, decompose the jobs that were queued or
    // in flight at the crash (in submission order, matching their original
    // dispatch order).  A job the store now covers entirely finishes right
    // here — replayed completions need no journaling, the next replay
    // re-derives them the same way.
    let mut unfinished: Vec<String> = queue
        .jobs
        .values()
        .filter(|j| j.status == JobStatus::Queued)
        .map(|j| j.id.clone())
        .collect();
    unfinished.sort_by_key(|id| {
        id.strip_prefix("job-")
            .and_then(|n| n.parse::<usize>().ok())
            .unwrap_or(usize::MAX)
    });
    for id in unfinished {
        queue.decompose_job(&id);
    }
    // Replayed evictions counted during finish() are history, not news.
    queue.epoch = 0;
}

#[cfg(test)]
mod tests {
    use super::*;
    use bitmod::llm::config::LlmModel;
    use bitmod::llm::proxy::ProxyConfig;
    use bitmod::sweep::SweepDtype;

    fn tiny(models: Vec<LlmModel>) -> SweepConfig {
        SweepConfig::new(models, vec![3, 4]).with_proxy(ProxyConfig::tiny())
    }

    fn start(workers: usize, shards: usize) -> CoordinatorHandle {
        Coordinator::start(CoordinatorConfig {
            workers,
            shards,
            ..CoordinatorConfig::default()
        })
    }

    #[test]
    fn coordinator_runs_jobs_to_completion_and_dedups() {
        let handle = start(2, 1);
        let a = handle.coordinator().submit(&tiny(vec![LlmModel::Phi2B]));
        let b = handle.coordinator().submit(&tiny(vec![LlmModel::Phi2B]));
        assert_eq!(a.job_id, b.job_id);
        assert!(b.deduped);
        handle.coordinator().drain();
        let view = handle.coordinator().status(&a.job_id).expect("job exists");
        assert_eq!(view.status, JobStatus::Done);
        assert_eq!(view.submissions, 2);
        let report = handle.coordinator().result(&a.job_id).unwrap().unwrap();
        assert_eq!(report.records.len(), 4); // 1 model × 2 dtypes × 2 bits
        let stats = handle.coordinator().stats();
        assert_eq!(stats.done, 1);
        assert_eq!(stats.deduped_submissions, 1);
        assert_eq!(stats.pool_harnesses, 1);
        assert_eq!(stats.executors, 2, "both local executors registered");
        handle.shutdown();
    }

    #[test]
    fn batched_jobs_share_harnesses_across_overlapping_grids() {
        let handle = start(1, 1);
        // Three jobs over two distinct models → exactly two harnesses built.
        handle.coordinator().submit(&tiny(vec![LlmModel::Phi2B]));
        handle.coordinator().submit(&tiny(vec![LlmModel::Opt1_3B]));
        handle
            .coordinator()
            .submit(&tiny(vec![LlmModel::Phi2B, LlmModel::Opt1_3B]));
        handle.coordinator().drain();
        let stats = handle.coordinator().stats();
        assert_eq!(stats.done, 3);
        assert_eq!(stats.pool_harnesses, 2);
        handle.shutdown();
    }

    #[test]
    fn sharded_coordinator_matches_whole_grid_run() {
        let cfg = tiny(vec![LlmModel::Phi2B]).with_seed(5);
        let direct = cfg.run();
        let handle = start(2, 3);
        let out = handle.coordinator().submit(&cfg);
        handle.coordinator().drain();
        let served = handle.coordinator().result(&out.job_id).unwrap().unwrap();
        assert_eq!(
            serde_json::to_string(&served.records).unwrap(),
            serde_json::to_string(&direct.records).unwrap()
        );
        handle.shutdown();
    }

    #[test]
    fn unknown_ids_and_unfinished_results_are_reported() {
        let handle = start(1, 1);
        assert!(handle.coordinator().status("job-99").is_none());
        assert!(handle.coordinator().result("job-99").is_none());
        let out = handle.coordinator().submit(
            &SweepConfig::new(vec![LlmModel::Phi2B], vec![4]).with_proxy(ProxyConfig::tiny()),
        );
        // Immediately after submit, the result may legitimately not be ready.
        match handle.coordinator().result(&out.job_id) {
            Some(Ok(_)) => {}
            Some(Err(msg)) => assert!(msg.contains("not available")),
            None => panic!("job must exist"),
        }
        handle.coordinator().drain();
        assert!(handle.coordinator().result(&out.job_id).unwrap().is_ok());
        handle.shutdown();
    }

    #[test]
    fn capped_coordinator_evicts_oldest_reports_fifo() {
        let handle = Coordinator::start(CoordinatorConfig {
            workers: 1,
            cache_cap: 1,
            ..CoordinatorConfig::default()
        });
        let first = handle.coordinator().submit(&tiny(vec![LlmModel::Phi2B]));
        handle.coordinator().drain();
        assert!(handle.coordinator().result(&first.job_id).unwrap().is_ok());
        // Finishing a second job evicts the first report.
        let second = handle
            .coordinator()
            .submit(&tiny(vec![LlmModel::Phi2B]).with_seed(7));
        handle.coordinator().drain();
        assert!(handle.coordinator().status(&first.job_id).is_none());
        assert!(handle.coordinator().result(&first.job_id).is_none());
        assert!(handle.coordinator().result(&second.job_id).unwrap().is_ok());
        let stats = handle.coordinator().stats();
        assert_eq!(stats.evicted_jobs, 1);
        assert_eq!(stats.done, 1);
        // The evicted grid re-runs instead of hitting the cache.
        let retry = handle.coordinator().submit(&tiny(vec![LlmModel::Phi2B]));
        assert!(!retry.deduped);
        handle.coordinator().drain();
        handle.shutdown();
    }

    #[test]
    fn dedup_distinguishes_every_grid_axis() {
        let handle = start(1, 1);
        let base = tiny(vec![LlmModel::Phi2B]);
        let a = handle.coordinator().submit(&base);
        let b = handle
            .coordinator()
            .submit(&base.clone().with_dtypes(vec![SweepDtype::Mx]));
        assert_ne!(a.job_id, b.job_id);
        handle.coordinator().drain();
        handle.shutdown();
    }

    #[test]
    fn executor_less_shutdown_abandons_stranded_work_instead_of_hanging() {
        // A pure coordinator with no attached executors must not hang its
        // own shutdown on queued work nobody can run: after the grace
        // period the jobs fail with a named reason and drain() returns.
        let handle = Coordinator::start(CoordinatorConfig {
            workers: 0,
            lease_timeout: Duration::from_millis(100),
            ..CoordinatorConfig::default()
        });
        let out = handle.coordinator().submit(&tiny(vec![LlmModel::Phi2B]));
        handle.coordinator().request_shutdown();
        std::thread::sleep(Duration::from_millis(350)); // > 3× lease timeout
        let started = Instant::now();
        handle.coordinator().drain();
        assert!(
            started.elapsed() < Duration::from_secs(5),
            "drain must not hang on stranded work"
        );
        let view = handle.coordinator().status(&out.job_id).unwrap();
        assert_eq!(view.status, JobStatus::Failed);
        assert!(
            view.error.unwrap().contains("abandoned at shutdown"),
            "the abandonment is a named failure"
        );
        handle.shutdown();
    }

    #[test]
    fn journal_restores_queued_and_completed_jobs_across_restarts() {
        let dir =
            std::env::temp_dir().join(format!("bitmod-coordinator-journal-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let with_state = || CoordinatorConfig {
            workers: 1,
            shards: 2,
            state_dir: Some(dir.clone()),
            ..CoordinatorConfig::default()
        };
        let done_cfg = tiny(vec![LlmModel::Phi2B]);
        let queued_cfg = tiny(vec![LlmModel::Phi2B]).with_seed(9);

        // First life: one job completes, a second is accepted but never runs
        // (the coordinator is halted abruptly).
        let (done_id, queued_id) = {
            let handle = Coordinator::start(with_state());
            let done = handle.coordinator().submit(&done_cfg);
            handle.coordinator().drain();
            handle.halt();
            // Submitting after halt still journals (the accept path is
            // independent of executors) — this is the "queued at crash" job.
            let handle = Coordinator::start(CoordinatorConfig {
                workers: 0,
                ..with_state()
            });
            let queued = handle.coordinator().submit(&queued_cfg);
            assert_eq!(
                handle.coordinator().status(&queued.job_id).unwrap().status,
                JobStatus::Queued
            );
            handle.halt();
            (done.job_id, queued.job_id)
        };

        // Second life: the done job serves from the rebuilt cache, the
        // queued job resumes and completes.
        let handle = Coordinator::start(with_state());
        let c = handle.coordinator();
        assert_eq!(c.status(&done_id).unwrap().status, JobStatus::Done);
        assert!(c.submit(&done_cfg).deduped, "result cache rebuilt");
        c.drain();
        assert_eq!(c.status(&queued_id).unwrap().status, JobStatus::Done);
        let resumed = c.result(&queued_id).unwrap().unwrap();
        let direct = queued_cfg.canonicalized().run();
        assert_eq!(
            serde_json::to_string(&resumed.records).unwrap(),
            serde_json::to_string(&direct.records).unwrap(),
            "resumed job is bit-identical to an uninterrupted run"
        );
        // Job ids continue past the replayed ones.
        let fresh = c.submit(&tiny(vec![LlmModel::Opt1_3B]));
        assert_ne!(fresh.job_id, done_id);
        assert_ne!(fresh.job_id, queued_id);
        c.drain();
        handle.shutdown();
        let _ = std::fs::remove_dir_all(&dir);
    }
}
