//! The long-running job engine: worker threads draining a [`JobQueue`],
//! batching harness synthesis across jobs through one shared
//! [`HarnessPool`], and (optionally) running every job as an `n`-way
//! in-process sharded sweep.

use crate::job::{JobQueue, JobStatus, JobView, SubmitOutcome};
use bitmod::shard::{merge_shards, run_shard_with_pool, ShardSpec};
use bitmod::sweep::{run_sweep_with_pool, SweepConfig, SweepReport};
use bitmod_llm::eval::HarnessPool;
use serde::{Deserialize, Serialize};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;

/// Tunables of a serving engine.
#[derive(Debug, Clone, Copy)]
pub struct EngineConfig {
    /// Worker threads draining the queue (each sweep is itself
    /// rayon-parallel, so more than a few workers rarely helps).
    pub workers: usize,
    /// In-process shard count per job: `1` runs each sweep whole, `n > 1`
    /// partitions every grid with [`ShardSpec`] and merges, exercising the
    /// exact same partition/merge path as `bitmod-cli worker`.
    pub shards: usize,
    /// Maximum completed reports kept in the dedup/result cache; the
    /// oldest-finished job is evicted first (`bitmod-cli serve --cache-cap`).
    /// `usize::MAX` (the default) never evicts.
    pub cache_cap: usize,
}

impl Default for EngineConfig {
    fn default() -> Self {
        Self {
            workers: 2,
            shards: 1,
            cache_cap: usize::MAX,
        }
    }
}

/// Aggregate engine counters, reported by `ping`.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct EngineStats {
    /// Total jobs (all states).
    pub jobs: usize,
    /// Jobs waiting for a worker.
    pub queued: usize,
    /// Jobs currently executing.
    pub running: usize,
    /// Jobs finished successfully.
    pub done: usize,
    /// Jobs that failed.
    pub failed: usize,
    /// Submissions absorbed by dedup instead of spawning a job.
    pub deduped_submissions: usize,
    /// Completed jobs evicted from the result cache (FIFO, capped engines
    /// only).
    pub evicted_jobs: usize,
    /// Distinct harnesses in the shared pool.
    pub pool_harnesses: usize,
    /// Worker thread count.
    pub workers: usize,
    /// In-process shards per job.
    pub shards: usize,
}

/// The serving engine: shared state plus the harness pool that batches
/// synthesis across jobs.
///
/// Construction does not spawn anything; [`ServeEngine::start`] returns a
/// handle owning the worker threads.
///
/// ```
/// use bitmod::llm::config::LlmModel;
/// use bitmod::llm::proxy::ProxyConfig;
/// use bitmod::sweep::SweepConfig;
/// use bitmod_server::engine::{EngineConfig, ServeEngine};
///
/// let handle = ServeEngine::start(EngineConfig { workers: 1, shards: 2, ..EngineConfig::default() });
/// let cfg = SweepConfig::new(vec![LlmModel::Phi2B], vec![4])
///     .with_proxy(ProxyConfig::tiny());
/// let out = handle.engine().submit(&cfg);
/// handle.engine().drain();
/// let report = handle.engine().result(&out.job_id).unwrap().unwrap();
/// assert_eq!(report.records.len(), 2);
/// handle.shutdown();
/// ```
#[derive(Debug)]
pub struct ServeEngine {
    state: Mutex<JobQueue>,
    /// Wakes workers when a job is queued or shutdown is requested.
    wake: Condvar,
    /// Wakes [`ServeEngine::drain`] waiters when a job finishes.
    idle: Condvar,
    pool: HarnessPool,
    config: EngineConfig,
}

/// Owns a running engine's worker threads; dropping without
/// [`EngineHandle::shutdown`] detaches them (they exit at process end).
#[derive(Debug)]
pub struct EngineHandle {
    engine: Arc<ServeEngine>,
    workers: Vec<JoinHandle<()>>,
}

impl EngineHandle {
    /// The engine this handle controls.
    pub fn engine(&self) -> &Arc<ServeEngine> {
        &self.engine
    }

    /// Requests shutdown and joins every worker.  Workers drain the queue
    /// before exiting, so jobs accepted before the request still complete.
    pub fn shutdown(self) {
        self.engine.request_shutdown();
        for w in self.workers {
            let _ = w.join();
        }
    }
}

impl ServeEngine {
    /// Spawns `config.workers` worker threads around a fresh engine.
    pub fn start(config: EngineConfig) -> EngineHandle {
        let engine = Arc::new(ServeEngine {
            state: Mutex::new(JobQueue::with_cache_cap(config.cache_cap.max(1))),
            wake: Condvar::new(),
            idle: Condvar::new(),
            pool: HarnessPool::new(),
            config: EngineConfig {
                workers: config.workers.max(1),
                shards: config.shards.max(1),
                // A cap of zero would evict every report before any client
                // could fetch it; clamp like workers/shards.
                cache_cap: config.cache_cap.max(1),
            },
        });
        let workers = (0..engine.config.workers)
            .map(|_| {
                let e = Arc::clone(&engine);
                std::thread::spawn(move || e.worker_loop())
            })
            .collect();
        EngineHandle { engine, workers }
    }

    /// Submits a sweep; returns the (possibly deduplicated) job id.
    pub fn submit(&self, config: &SweepConfig) -> SubmitOutcome {
        let outcome = self.state.lock().expect("engine lock").submit(config);
        if !outcome.deduped {
            self.wake.notify_one();
        }
        outcome
    }

    /// Snapshot of one job, or `None` for an unknown id.
    pub fn status(&self, id: &str) -> Option<JobView> {
        self.state
            .lock()
            .expect("engine lock")
            .jobs
            .get(id)
            .map(|j| j.view())
    }

    /// The completed report of a done job.  `None` for an unknown id,
    /// `Some(Err)` while the job is not (successfully) finished.
    pub fn result(&self, id: &str) -> Option<Result<Arc<SweepReport>, String>> {
        let state = self.state.lock().expect("engine lock");
        let job = state.jobs.get(id)?;
        Some(match (&job.report, job.status) {
            (Some(r), _) => Ok(Arc::clone(r)),
            (None, JobStatus::Failed) => Err(job
                .error
                .clone()
                .unwrap_or_else(|| "job failed".to_string())),
            (None, s) => Err(format!("job is {} — result not available yet", s.name())),
        })
    }

    /// Every job, in submission order.
    pub fn list(&self) -> Vec<JobView> {
        self.state.lock().expect("engine lock").views()
    }

    /// Aggregate counters for `ping`.
    pub fn stats(&self) -> EngineStats {
        let state = self.state.lock().expect("engine lock");
        let count = |s: JobStatus| state.jobs.values().filter(|j| j.status == s).count();
        EngineStats {
            jobs: state.jobs.len(),
            queued: count(JobStatus::Queued),
            running: count(JobStatus::Running),
            done: count(JobStatus::Done),
            failed: count(JobStatus::Failed),
            deduped_submissions: state.jobs.values().map(|j| j.submissions - 1).sum(),
            evicted_jobs: state.evicted,
            pool_harnesses: self.pool.len(),
            workers: self.config.workers,
            shards: self.config.shards,
        }
    }

    /// Blocks until no job is queued or running.
    pub fn drain(&self) {
        let mut state = self.state.lock().expect("engine lock");
        while state.has_live_jobs() {
            state = self.idle.wait(state).expect("engine lock");
        }
    }

    /// Flags shutdown and wakes every worker.
    pub fn request_shutdown(&self) {
        self.state.lock().expect("engine lock").shutting_down = true;
        self.wake.notify_all();
    }

    /// Whether shutdown has been requested.
    pub fn is_shutting_down(&self) -> bool {
        self.state.lock().expect("engine lock").shutting_down
    }

    fn worker_loop(&self) {
        loop {
            let next = {
                let mut state = self.state.lock().expect("engine lock");
                loop {
                    if let Some(job) = state.take_next() {
                        break Some(job);
                    }
                    if state.shutting_down {
                        break None;
                    }
                    state = self.wake.wait(state).expect("engine lock");
                }
            };
            let Some((id, config)) = next else { return };
            // A panicking sweep must fail its job, not kill the worker.
            let result = catch_unwind(AssertUnwindSafe(|| self.execute(&config)))
                .unwrap_or_else(|p| Err(panic_message(p)));
            self.state.lock().expect("engine lock").finish(&id, result);
            self.idle.notify_all();
        }
    }

    /// Runs one job: whole-grid, or sharded `n` ways and merged when the
    /// engine is configured with `shards > 1`.  Both paths share the
    /// engine-wide harness pool, which is what batches synthesis across
    /// overlapping jobs.
    fn execute(&self, config: &SweepConfig) -> Result<SweepReport, String> {
        if self.config.shards <= 1 {
            return Ok(run_sweep_with_pool(config, &self.pool));
        }
        let shards: Vec<_> = ShardSpec::all(self.config.shards)
            .into_iter()
            .map(|spec| run_shard_with_pool(config, spec, &self.pool))
            .collect();
        merge_shards(&shards)
    }
}

fn panic_message(p: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = p.downcast_ref::<&str>() {
        format!("sweep panicked: {s}")
    } else if let Some(s) = p.downcast_ref::<String>() {
        format!("sweep panicked: {s}")
    } else {
        "sweep panicked".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bitmod::llm::config::LlmModel;
    use bitmod::llm::proxy::ProxyConfig;
    use bitmod::sweep::SweepDtype;

    fn tiny(models: Vec<LlmModel>) -> SweepConfig {
        SweepConfig::new(models, vec![3, 4]).with_proxy(ProxyConfig::tiny())
    }

    #[test]
    fn engine_runs_jobs_to_completion_and_dedups() {
        let handle = ServeEngine::start(EngineConfig {
            workers: 2,
            shards: 1,
            ..EngineConfig::default()
        });
        let a = handle.engine().submit(&tiny(vec![LlmModel::Phi2B]));
        let b = handle.engine().submit(&tiny(vec![LlmModel::Phi2B]));
        assert_eq!(a.job_id, b.job_id);
        assert!(b.deduped);
        handle.engine().drain();
        let view = handle.engine().status(&a.job_id).expect("job exists");
        assert_eq!(view.status, JobStatus::Done);
        assert_eq!(view.submissions, 2);
        let report = handle.engine().result(&a.job_id).unwrap().unwrap();
        assert_eq!(report.records.len(), 4); // 1 model × 2 dtypes × 2 bits
        let stats = handle.engine().stats();
        assert_eq!(stats.done, 1);
        assert_eq!(stats.deduped_submissions, 1);
        assert_eq!(stats.pool_harnesses, 1);
        handle.shutdown();
    }

    #[test]
    fn batched_jobs_share_harnesses_across_overlapping_grids() {
        let handle = ServeEngine::start(EngineConfig {
            workers: 1,
            shards: 1,
            ..EngineConfig::default()
        });
        // Three jobs over two distinct models → exactly two harnesses built.
        handle.engine().submit(&tiny(vec![LlmModel::Phi2B]));
        handle.engine().submit(&tiny(vec![LlmModel::Opt1_3B]));
        handle
            .engine()
            .submit(&tiny(vec![LlmModel::Phi2B, LlmModel::Opt1_3B]));
        handle.engine().drain();
        let stats = handle.engine().stats();
        assert_eq!(stats.done, 3);
        assert_eq!(stats.pool_harnesses, 2);
        handle.shutdown();
    }

    #[test]
    fn sharded_engine_matches_whole_grid_engine() {
        let cfg = tiny(vec![LlmModel::Phi2B]).with_seed(5);
        let direct = cfg.run();
        let handle = ServeEngine::start(EngineConfig {
            workers: 1,
            shards: 3,
            ..EngineConfig::default()
        });
        let out = handle.engine().submit(&cfg);
        handle.engine().drain();
        let served = handle.engine().result(&out.job_id).unwrap().unwrap();
        assert_eq!(
            serde_json::to_string(&served.records).unwrap(),
            serde_json::to_string(&direct.records).unwrap()
        );
        handle.shutdown();
    }

    #[test]
    fn unknown_ids_and_unfinished_results_are_reported() {
        let handle = ServeEngine::start(EngineConfig {
            workers: 1,
            shards: 1,
            ..EngineConfig::default()
        });
        assert!(handle.engine().status("job-99").is_none());
        assert!(handle.engine().result("job-99").is_none());
        let out = handle.engine().submit(
            &SweepConfig::new(vec![LlmModel::Phi2B], vec![4]).with_proxy(ProxyConfig::tiny()),
        );
        // Immediately after submit, the result may legitimately not be ready.
        match handle.engine().result(&out.job_id) {
            Some(Ok(_)) => {}
            Some(Err(msg)) => assert!(msg.contains("not available")),
            None => panic!("job must exist"),
        }
        handle.engine().drain();
        assert!(handle.engine().result(&out.job_id).unwrap().is_ok());
        handle.shutdown();
    }

    #[test]
    fn capped_engine_evicts_oldest_reports_fifo() {
        let handle = ServeEngine::start(EngineConfig {
            workers: 1,
            shards: 1,
            cache_cap: 1,
        });
        let first = handle.engine().submit(&tiny(vec![LlmModel::Phi2B]));
        handle.engine().drain();
        assert!(handle.engine().result(&first.job_id).unwrap().is_ok());
        // Finishing a second job evicts the first report.
        let second = handle
            .engine()
            .submit(&tiny(vec![LlmModel::Phi2B]).with_seed(7));
        handle.engine().drain();
        assert!(handle.engine().status(&first.job_id).is_none());
        assert!(handle.engine().result(&first.job_id).is_none());
        assert!(handle.engine().result(&second.job_id).unwrap().is_ok());
        let stats = handle.engine().stats();
        assert_eq!(stats.evicted_jobs, 1);
        assert_eq!(stats.done, 1);
        // The evicted grid re-runs instead of hitting the cache.
        let retry = handle.engine().submit(&tiny(vec![LlmModel::Phi2B]));
        assert!(!retry.deduped);
        handle.engine().drain();
        handle.shutdown();
    }

    #[test]
    fn dedup_distinguishes_every_grid_axis() {
        let handle = ServeEngine::start(EngineConfig {
            workers: 1,
            shards: 1,
            ..EngineConfig::default()
        });
        let base = tiny(vec![LlmModel::Phi2B]);
        let a = handle.engine().submit(&base);
        let b = handle
            .engine()
            .submit(&base.clone().with_dtypes(vec![SweepDtype::Mx]));
        assert_ne!(a.job_id, b.job_id);
        handle.engine().drain();
        handle.shutdown();
    }
}
