//! The executor half of the coordinator/executor split.
//!
//! Two kinds of executor lease work units from a [`Coordinator`] and return
//! [`bitmod::shard::ShardReport`]s:
//!
//! * **in-process** — threads spawned by [`Coordinator::start`], calling
//!   the coordinator directly and sharing its [`HarnessPool`].  This is
//!   the default, behavior-preserving path.
//! * **remote** ([`attach_and_run`]) — `bitmod-cli worker --attach <addr>`
//!   processes that register over TCP with the `attach` verb, poll `lease`,
//!   heartbeat while running, and return results with `shard_result`.  A
//!   remote executor that dies mid-shard simply stops heart-beating; the
//!   coordinator requeues the shard for someone else.
//!
//! Both kinds run the exact same partial-shard runner
//! ([`bitmod::shard::run_partial_shard_cached`]) over the exact grid
//! indices the coordinator assigned — the unit's group-aware share of the
//! job's uncached remainder — so records are bit-identical wherever a shard
//! lands, and points another job already computed are never re-run.
//! In-process executors consult the coordinator's daemon-lifetime
//! [`bitmod::sweep::SweepAlgoCache`]; each remote worker process keeps its
//! own, so algorithm sides are computed once per process either way.
//!
//! Harnesses pooled here also pool their forward workspaces: every
//! `EvalHarness` owns a `ForwardScratch` pool, so once a daemon's harness
//! is warm, repeated point evaluations through it are allocation-free in
//! steady state (see `docs/PERFORMANCE.md`, "Memory traffic & scratch
//! arenas") — long-running daemons stop touching the heap on the hot path
//! rather than churning it per point.

use crate::coordinator::Coordinator;
use bitmod::shard::{run_partial_shard_cached, ShardSpec};
use bitmod::sweep::{SweepAlgoCache, SweepConfig};
use bitmod_llm::eval::HarnessPool;
use serde::{Serialize, Value};
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// The in-process executor loop: lease → run → report, until the
/// coordinator drains and shuts down (or halts).
pub(crate) fn run_local(coordinator: &Coordinator, index: usize) {
    let exec = coordinator.register_executor(&format!("local-{index}"), false);
    while let Some(work) = coordinator.lease_blocking(&exec) {
        // A panicking shard must fail its job, not kill the executor.
        let result = catch_unwind(AssertUnwindSafe(|| {
            run_partial_shard_cached(
                &work.config,
                work.shard,
                &work.indices,
                coordinator.pool(),
                coordinator.algos(),
                &work.job,
            )
        }));
        let _ = match result {
            Ok(report) => coordinator.complete_shard(&exec, work.lease, report),
            Err(p) => coordinator.fail_shard(&exec, work.lease, panic_message(p)),
        };
    }
}

/// Turns a caught panic payload into a job-failure message.
pub(crate) fn panic_message(p: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = p.downcast_ref::<&str>() {
        format!("sweep panicked: {s}")
    } else if let Some(s) = p.downcast_ref::<String>() {
        format!("sweep panicked: {s}")
    } else {
        "sweep panicked".to_string()
    }
}

/// The sleep before each connection attempt of [`connect_with_backoff`]:
/// the first attempt is immediate, then 50 ms doubling to 1.6 s — seven
/// attempts and ~3.15 s of sleep in total.  Exposed as data (rather than
/// being buried in the retry loop) so the schedule itself is unit-testable.
pub fn backoff_schedule() -> Vec<Duration> {
    (0..7)
        .map(|attempt: u32| match attempt {
            0 => Duration::ZERO,
            _ => Duration::from_millis(50) * (1 << (attempt - 1)),
        })
        .collect()
}

/// Connects to `addr`, retrying connection-refused/reset failures with short
/// exponential backoff (the [`backoff_schedule`]) — the daemon-still-starting
/// race every client and attaching worker hits in CI and scripts.  Permanent
/// failures (an unresolvable host, a malformed address) surface immediately
/// instead of burning the whole backoff budget.
pub fn connect_with_backoff(addr: &str) -> Result<TcpStream, String> {
    let mut last_error = String::new();
    for delay in backoff_schedule() {
        if !delay.is_zero() {
            std::thread::sleep(delay);
        }
        match TcpStream::connect(addr) {
            Ok(stream) => return Ok(stream),
            Err(e) => {
                let transient = matches!(
                    e.kind(),
                    std::io::ErrorKind::ConnectionRefused
                        | std::io::ErrorKind::ConnectionReset
                        | std::io::ErrorKind::ConnectionAborted
                        | std::io::ErrorKind::TimedOut
                        | std::io::ErrorKind::AddrNotAvailable
                );
                if !transient {
                    return Err(format!("could not connect to daemon at {addr}: {e}"));
                }
                last_error = e.to_string();
            }
        }
    }
    Err(format!(
        "could not connect to daemon at {addr}: {last_error}"
    ))
}

/// A line-JSON protocol client: one request line out, one response line
/// back, with `ok: false` responses turned into `Err` carrying the daemon's
/// message.  This is the one client implementation in the workspace — the
/// executor loop uses it directly and `bitmod-cli`'s `submit`/`status`
/// client wraps it, so protocol framing cannot drift between the two.
///
/// The streaming `watch` verb is driven with [`WireClient::send`] plus
/// repeated [`WireClient::read_response`].
#[derive(Debug)]
pub struct WireClient {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
    addr: String,
}

impl WireClient {
    /// Connects to a `bitmod-cli serve --listen` daemon, retrying briefly
    /// if the daemon is still starting (see [`connect_with_backoff`]).
    pub fn connect(addr: &str) -> Result<WireClient, String> {
        let stream = connect_with_backoff(addr)?;
        let reader = BufReader::new(
            stream
                .try_clone()
                .map_err(|e| format!("could not clone connection: {e}"))?,
        );
        Ok(WireClient {
            reader,
            writer: stream,
            addr: addr.to_string(),
        })
    }

    /// Sends one request line without waiting for a response (the streaming
    /// half of `watch`; pair with [`WireClient::read_response`]).
    pub fn send(&mut self, line: &str) -> Result<(), String> {
        writeln!(self.writer, "{line}").map_err(|e| format!("send failed: {e}"))?;
        self.writer.flush().map_err(|e| format!("send failed: {e}"))
    }

    /// Reads and parses one response line; `ok: false` becomes `Err` with
    /// the daemon's message.
    pub fn read_response(&mut self) -> Result<Vec<(String, Value)>, String> {
        let mut response = String::new();
        let n = self
            .reader
            .read_line(&mut response)
            .map_err(|e| format!("receive failed: {e}"))?;
        if n == 0 {
            return Err(format!("daemon at {} closed the connection", self.addr));
        }
        let value = serde_json::parse_value(response.trim())
            .map_err(|e| format!("daemon sent invalid JSON: {e}"))?;
        let map = value
            .as_map()
            .ok_or("daemon response was not a JSON object")?
            .to_vec();
        match field(&map, "ok").and_then(Value::as_bool) {
            Some(true) => Ok(map),
            _ => Err(field(&map, "error")
                .and_then(Value::as_str)
                .unwrap_or("daemon reported an unspecified error")
                .to_string()),
        }
    }

    /// Sends one request line and returns the parsed response object.
    pub fn request(&mut self, line: &str) -> Result<Vec<(String, Value)>, String> {
        self.send(line)?;
        self.read_response()
    }
}

/// Looks up a top-level field of a response object.
pub fn field<'a>(map: &'a [(String, Value)], key: &str) -> Option<&'a Value> {
    map.iter().find(|(k, _)| k == key).map(|(_, v)| v)
}

/// Options for a remote executor session.
#[derive(Debug, Clone)]
pub struct AttachOptions {
    /// Daemon address (`host:port`, see `bitmod-cli serve --listen`).
    pub addr: String,
    /// Self-reported executor name (shows up in the daemon's journal).
    pub name: String,
    /// Idle poll interval between `lease` attempts when the queue is empty.
    pub poll: Duration,
    /// Suppress per-shard progress lines on stderr.
    pub quiet: bool,
}

impl AttachOptions {
    /// Defaults: 300 ms idle poll, chatty.
    pub fn new(addr: &str, name: &str) -> Self {
        Self {
            addr: addr.to_string(),
            name: name.to_string(),
            poll: Duration::from_millis(300),
            quiet: false,
        }
    }
}

/// What a remote executor session accomplished before the daemon shut down.
#[derive(Debug, Clone)]
pub struct AttachOutcome {
    /// The executor id the daemon assigned (last one, if re-attached).
    pub executor: String,
    /// Shards run to completion.
    pub shards_run: usize,
    /// Shards that panicked (reported as failures to the daemon).
    pub shards_failed: usize,
}

/// Upper bound on a remote worker's process-local algorithm cache.  Unlike
/// the coordinator's cache, a worker never hears about job evictions, so a
/// plain LRU cap is the only thing bounding it.
const WORKER_ALGO_CACHE_CAP: usize = 256;

/// The remote executor loop: attach to a daemon, lease shards, heartbeat
/// while running, return reports, repeat until the daemon reports
/// `shutting_down`.  A dropped connection triggers one full re-attach (the
/// daemon may have restarted from its journal); leases lost that way are
/// requeued server-side by the lease timeout.
pub fn attach_and_run(opts: &AttachOptions) -> Result<AttachOutcome, String> {
    let mut session = attach(opts)?;
    let pool = HarnessPool::new();
    let algos = SweepAlgoCache::with_cap(WORKER_ALGO_CACHE_CAP);
    let mut shards_run = 0usize;
    let mut shards_failed = 0usize;
    let mut reconnects = 0usize;
    loop {
        let lease_line = format!(r#"{{"cmd":"lease","executor":"{}"}}"#, session.executor);
        let response = match session.wire.request(&lease_line) {
            Ok(r) => {
                reconnects = 0;
                r
            }
            Err(e) => {
                // One re-attach per failure, with backoff inside connect:
                // the daemon may be restarting from its journal.
                reconnects += 1;
                if reconnects > 2 {
                    return Err(format!("lost the daemon at {}: {e}", opts.addr));
                }
                if !opts.quiet {
                    eprintln!("[worker] connection lost ({e}); re-attaching");
                }
                session = attach(opts)?;
                continue;
            }
        };
        let shutting_down = field(&response, "shutting_down")
            .and_then(Value::as_bool)
            .unwrap_or(false);
        let work = match field(&response, "work") {
            Some(Value::Null) | None => None,
            Some(v) => Some(v),
        };
        let Some(work) = work else {
            if shutting_down {
                return Ok(AttachOutcome {
                    executor: session.executor,
                    shards_run,
                    shards_failed,
                });
            }
            std::thread::sleep(opts.poll);
            continue;
        };
        let (lease, job, shard, config, indices) = parse_work(work)?;
        if !opts.quiet {
            eprintln!(
                "[worker] {} leased {job} shard {shard} ({} grid points)",
                session.executor,
                indices.len()
            );
        }

        // Heartbeat from a second connection while the shard runs, so a
        // long shard does not hit the lease timeout.
        let stop = Arc::new(AtomicBool::new(false));
        let beat = spawn_heartbeat(
            &opts.addr,
            &session.executor,
            lease,
            session.lease_timeout / 3,
            Arc::clone(&stop),
        );
        let outcome = catch_unwind(AssertUnwindSafe(|| {
            run_partial_shard_cached(&config, shard, &indices, &pool, &algos, &job)
        }))
        .map_err(panic_message);
        stop.store(true, Ordering::SeqCst);
        let _ = beat.join();

        let mut fields = vec![
            ("cmd".to_string(), Value::Str("shard_result".into())),
            ("executor".to_string(), Value::Str(session.executor.clone())),
            ("lease".to_string(), Value::U64(lease)),
        ];
        fields.push(match &outcome {
            Ok(report) => ("report".to_string(), report.to_value()),
            Err(e) => ("error".to_string(), Value::Str(e.clone())),
        });
        let result_line =
            serde_json::to_string(&Value::Map(fields)).expect("shard results serialize");
        match session.wire.request(&result_line) {
            Ok(_) => match outcome {
                Ok(_) => shards_run += 1,
                Err(_) => shards_failed += 1,
            },
            // An expired/unknown lease (we heart-beat too late, the shard
            // was requeued) is the protocol working, not a worker error.
            Err(e) => {
                if !opts.quiet {
                    eprintln!("[worker] result for lease {lease} rejected: {e}");
                }
            }
        }
    }
}

/// One attached session: the persistent connection plus the identity and
/// lease timeout the daemon assigned.
#[derive(Debug)]
struct Session {
    wire: WireClient,
    executor: String,
    lease_timeout: Duration,
}

fn attach(opts: &AttachOptions) -> Result<Session, String> {
    let mut wire = WireClient::connect(&opts.addr)?;
    let fields = vec![
        ("cmd".to_string(), Value::Str("attach".into())),
        ("name".to_string(), Value::Str(opts.name.clone())),
    ];
    let line = serde_json::to_string(&Value::Map(fields)).expect("attach serializes");
    let response = wire.request(&line)?;
    let executor = field(&response, "executor")
        .and_then(Value::as_str)
        .ok_or("attach response carried no executor id")?
        .to_string();
    let lease_ms = field(&response, "lease_ms")
        .and_then(Value::as_u64)
        .unwrap_or(10_000);
    if !opts.quiet {
        eprintln!(
            "[worker] attached to {} as {executor} (lease {lease_ms} ms)",
            opts.addr
        );
    }
    Ok(Session {
        wire,
        executor,
        lease_timeout: Duration::from_millis(lease_ms.max(100)),
    })
}

/// Parses a `lease` response's `work` object.  The `indices` field carries
/// the exact grid indices the unit computes; a daemon predating the point
/// cache omits it, in which case the worker falls back to the classic
/// stride over the whole grid (the two are identical when nothing was
/// cached).
fn parse_work(work: &Value) -> Result<(u64, String, ShardSpec, SweepConfig, Vec<usize>), String> {
    let map = work.as_map().ok_or("`work` must be an object")?;
    let lease = field(map, "lease")
        .and_then(Value::as_u64)
        .ok_or("work carried no lease id")?;
    let job = field(map, "job")
        .and_then(Value::as_str)
        .ok_or("work carried no job id")?
        .to_string();
    let shard = ShardSpec::parse(
        field(map, "shard")
            .and_then(Value::as_str)
            .ok_or("work carried no shard spec")?,
    )?;
    let config_value = field(map, "config").ok_or("work carried no config")?;
    let config: SweepConfig =
        serde_json::from_value(config_value).map_err(|e| format!("bad work config: {e}"))?;
    let indices = match field(map, "indices").and_then(Value::as_seq) {
        Some(seq) => seq
            .iter()
            .map(|v| {
                v.as_u64()
                    .map(|n| n as usize)
                    .ok_or("work indices must be integers".to_string())
            })
            .collect::<Result<Vec<usize>, String>>()?,
        None => (0..config.grid().len())
            .filter(|i| i % shard.count == shard.index)
            .collect(),
    };
    Ok((lease, job, shard, config, indices))
}

/// Heartbeats `lease` every `interval` from its own connection until `stop`
/// is set.  Failures are deliberately ignored: a missed heartbeat at worst
/// expires the lease, and the coordinator requeues the shard — the exact
/// recovery path a dead worker takes.
fn spawn_heartbeat(
    addr: &str,
    executor: &str,
    lease: u64,
    interval: Duration,
    stop: Arc<AtomicBool>,
) -> std::thread::JoinHandle<()> {
    let addr = addr.to_string();
    let line = format!(r#"{{"cmd":"heartbeat","executor":"{executor}","lease":{lease}}}"#);
    let interval = interval.max(Duration::from_millis(50));
    std::thread::spawn(move || {
        let mut wire = match WireClient::connect(&addr) {
            Ok(w) => w,
            Err(_) => return,
        };
        while !stop.load(Ordering::SeqCst) {
            if wire.request(&line).is_err() {
                return;
            }
            // Sleep in small steps so `stop` is honored promptly.
            let mut slept = Duration::ZERO;
            while slept < interval && !stop.load(Ordering::SeqCst) {
                let step = Duration::from_millis(25).min(interval - slept);
                std::thread::sleep(step);
                slept += step;
            }
        }
    })
}
