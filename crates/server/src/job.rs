//! Job bookkeeping for the serving engine: identifiers, lifecycle states,
//! and the queue/dedup-cache state machine.

use bitmod::sweep::{SweepConfig, SweepReport};
use serde::{Deserialize, Serialize};
use std::collections::{HashMap, VecDeque};
use std::sync::Arc;

/// Lifecycle state of a submitted sweep job.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum JobStatus {
    /// Accepted and waiting for a worker.
    Queued,
    /// A worker is executing the sweep.
    Running,
    /// Finished; the report is available.
    Done,
    /// Execution failed (the reason is in [`JobView::error`]).
    Failed,
}

impl JobStatus {
    /// The wire spelling of this status (`queued`, `running`, …).
    pub fn name(&self) -> &'static str {
        match self {
            JobStatus::Queued => "queued",
            JobStatus::Running => "running",
            JobStatus::Done => "done",
            JobStatus::Failed => "failed",
        }
    }
}

/// One job tracked by the engine.
#[derive(Debug)]
pub struct Job {
    /// The job identifier (`job-1`, `job-2`, … in submission order).
    pub id: String,
    /// The canonicalized configuration this job executes.
    pub config: SweepConfig,
    /// The dedup/result-cache key ([`SweepConfig::cache_key`]).
    pub cache_key: String,
    /// Current lifecycle state.
    pub status: JobStatus,
    /// How many submissions were coalesced into this job (1 = no dedup hit).
    pub submissions: usize,
    /// The completed report, once `status == Done`.
    pub report: Option<Arc<SweepReport>>,
    /// The failure reason, once `status == Failed`.
    pub error: Option<String>,
}

/// A read-only snapshot of a job, safe to hand to protocol handlers.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct JobView {
    /// The job identifier.
    pub id: String,
    /// Current lifecycle state.
    pub status: JobStatus,
    /// How many submissions were coalesced into this job.
    pub submissions: usize,
    /// Number of completed records, once done.
    pub records: Option<usize>,
    /// Number of skipped grid points, once done.
    pub skipped: Option<usize>,
    /// Sweep wall-clock seconds, once done.
    pub wall_seconds: Option<f64>,
    /// The failure reason, if the job failed.
    pub error: Option<String>,
}

impl Job {
    /// Snapshots the job for protocol responses.
    pub fn view(&self) -> JobView {
        JobView {
            id: self.id.clone(),
            status: self.status,
            submissions: self.submissions,
            records: self.report.as_ref().map(|r| r.records.len()),
            skipped: self.report.as_ref().map(|r| r.skipped.len()),
            wall_seconds: self.report.as_ref().map(|r| r.wall_seconds),
            error: self.error.clone(),
        }
    }
}

/// The engine's mutable state: FIFO queue, job table, and the dedup index
/// from canonical configuration keys to job ids.
///
/// The queue holds job *ids*; the job table owns the data.  A submission
/// whose canonical key matches an existing job (whatever its state) attaches
/// to that job instead of enqueueing a duplicate — a completed job doubles as
/// the result cache.
///
/// The result cache is size-capped: at most [`JobQueue::cache_cap`] `Done`
/// jobs are retained, and finishing a job beyond the cap evicts the
/// oldest-finished one (FIFO) — its report is dropped, its id becomes
/// unknown, and a resubmission of its grid runs fresh.  Queued, running and
/// failed jobs are never evicted.
#[derive(Debug)]
pub struct JobQueue {
    /// Jobs by id.
    pub jobs: HashMap<String, Job>,
    /// Queued job ids, oldest first.
    pub pending: VecDeque<String>,
    /// Canonical config key → job id (the dedup/result cache).
    pub by_key: HashMap<String, String>,
    /// Total jobs created (drives id assignment; dedup hits do not count).
    pub submitted: usize,
    /// True once shutdown has been requested; workers drain and exit.
    pub shutting_down: bool,
    /// Maximum number of `Done` jobs retained as the result cache
    /// (`usize::MAX` = unbounded, the default).
    pub cache_cap: usize,
    /// `Done` job ids in finish order, oldest first (the FIFO eviction
    /// queue).
    pub done_order: VecDeque<String>,
    /// Total jobs evicted from the result cache so far.
    pub evicted: usize,
}

impl Default for JobQueue {
    fn default() -> Self {
        Self::with_cache_cap(usize::MAX)
    }
}

/// Outcome of a submission: the job id plus whether it deduplicated onto an
/// existing job.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SubmitOutcome {
    /// The job the submission attached to.
    pub job_id: String,
    /// True if an existing job (queued, running, or finished) absorbed the
    /// submission.
    pub deduped: bool,
}

impl JobQueue {
    /// An empty queue retaining at most `cache_cap` completed reports.
    pub fn with_cache_cap(cache_cap: usize) -> Self {
        Self {
            jobs: HashMap::new(),
            pending: VecDeque::new(),
            by_key: HashMap::new(),
            submitted: 0,
            shutting_down: false,
            cache_cap,
            done_order: VecDeque::new(),
            evicted: 0,
        }
    }

    /// Submits a configuration: either attaches to the job already covering
    /// its canonical form, or creates and enqueues a new job.
    ///
    /// A `Failed` job does not absorb new submissions — resubmitting its
    /// grid enqueues a fresh job (the retry path), and the new job takes
    /// over the dedup index entry.  The failed job stays queryable by id.
    pub fn submit(&mut self, config: &SweepConfig) -> SubmitOutcome {
        let canonical = config.canonicalized();
        let cache_key = canonical.cache_key();
        if let Some(id) = self.by_key.get(&cache_key) {
            let job = self.jobs.get_mut(id).expect("dedup index points at a job");
            if job.status != JobStatus::Failed {
                job.submissions += 1;
                return SubmitOutcome {
                    job_id: id.clone(),
                    deduped: true,
                };
            }
        }
        self.submitted += 1;
        let id = format!("job-{}", self.submitted);
        self.jobs.insert(
            id.clone(),
            Job {
                id: id.clone(),
                config: canonical,
                cache_key: cache_key.clone(),
                status: JobStatus::Queued,
                submissions: 1,
                report: None,
                error: None,
            },
        );
        self.by_key.insert(cache_key, id.clone());
        self.pending.push_back(id.clone());
        SubmitOutcome {
            job_id: id,
            deduped: false,
        }
    }

    /// Pops the oldest queued job and marks it running; `None` if the queue
    /// is empty.
    pub fn take_next(&mut self) -> Option<(String, SweepConfig)> {
        let id = self.pending.pop_front()?;
        let job = self.jobs.get_mut(&id).expect("queued id exists");
        job.status = JobStatus::Running;
        Some((id, job.config.clone()))
    }

    /// Records a finished job, then enforces the result-cache cap by
    /// evicting the oldest `Done` jobs beyond it.
    pub fn finish(&mut self, id: &str, result: Result<SweepReport, String>) {
        let job = self.jobs.get_mut(id).expect("running id exists");
        match result {
            Ok(report) => {
                job.report = Some(Arc::new(report));
                job.status = JobStatus::Done;
                self.done_order.push_back(id.to_string());
                self.evict_beyond_cap();
            }
            Err(e) => {
                job.error = Some(e);
                job.status = JobStatus::Failed;
            }
        }
    }

    /// Drops the oldest-finished `Done` jobs until at most
    /// [`JobQueue::cache_cap`] remain, removing them from the job table and
    /// (when they still own it) the dedup index.
    fn evict_beyond_cap(&mut self) {
        while self.done_order.len() > self.cache_cap {
            let old = self
                .done_order
                .pop_front()
                .expect("len > cap implies non-empty");
            if let Some(job) = self.jobs.remove(&old) {
                // A failed-then-retried grid may have re-pointed the dedup
                // index at a newer job; only drop the entry this job owns.
                if self.by_key.get(&job.cache_key).is_some_and(|id| *id == old) {
                    self.by_key.remove(&job.cache_key);
                }
            }
            self.evicted += 1;
        }
    }

    /// Whether any job is queued or running.
    pub fn has_live_jobs(&self) -> bool {
        !self.pending.is_empty() || self.jobs.values().any(|j| j.status == JobStatus::Running)
    }

    /// Snapshots every job, in submission order.
    pub fn views(&self) -> Vec<JobView> {
        let mut views: Vec<&Job> = self.jobs.values().collect();
        views.sort_by_key(|j| {
            j.id.strip_prefix("job-")
                .and_then(|n| n.parse::<usize>().ok())
                .unwrap_or(usize::MAX)
        });
        views.into_iter().map(|j| j.view()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bitmod::llm::config::LlmModel;
    use bitmod::llm::proxy::ProxyConfig;
    use bitmod::sweep::SweepDtype;

    fn cfg() -> SweepConfig {
        SweepConfig::new(vec![LlmModel::Phi2B], vec![4]).with_proxy(ProxyConfig::tiny())
    }

    #[test]
    fn submit_dedups_on_canonical_form() {
        let mut q = JobQueue::default();
        let first = q.submit(&cfg());
        assert!(!first.deduped);
        // Same grid spelled differently (reversed dtype list) coalesces.
        let mut reordered = cfg();
        reordered.dtypes = vec![SweepDtype::IntAsym, SweepDtype::BitMod];
        let second = q.submit(&reordered);
        assert!(second.deduped);
        assert_eq!(second.job_id, first.job_id);
        assert_eq!(q.jobs[&first.job_id].submissions, 2);
        assert_eq!(q.pending.len(), 1);
        // A genuinely different grid gets its own job.
        let third = q.submit(&cfg().with_seed(7));
        assert!(!third.deduped);
        assert_ne!(third.job_id, first.job_id);
    }

    #[test]
    fn lifecycle_queued_running_done() {
        let mut q = JobQueue::default();
        let out = q.submit(&cfg());
        assert_eq!(q.jobs[&out.job_id].status, JobStatus::Queued);
        let (id, config) = q.take_next().expect("one queued job");
        assert_eq!(id, out.job_id);
        assert_eq!(q.jobs[&id].status, JobStatus::Running);
        assert!(q.has_live_jobs());
        q.finish(&id, Ok(config.run()));
        assert_eq!(q.jobs[&id].status, JobStatus::Done);
        assert!(!q.has_live_jobs());
        let view = &q.views()[0];
        assert_eq!(view.status, JobStatus::Done);
        assert!(view.records.unwrap() > 0);
        // Dedup hit after completion: the done job is the result cache.
        assert!(q.submit(&cfg()).deduped);
    }

    #[test]
    fn failed_jobs_carry_their_reason() {
        let mut q = JobQueue::default();
        let out = q.submit(&cfg());
        let (id, _) = q.take_next().unwrap();
        q.finish(&id, Err("worker exploded".to_string()));
        assert_eq!(q.jobs[&out.job_id].status, JobStatus::Failed);
        assert_eq!(q.views()[0].error.as_deref(), Some("worker exploded"));
    }

    #[test]
    fn result_cache_evicts_oldest_done_jobs_fifo() {
        let mut q = JobQueue::with_cache_cap(2);
        // Three distinct grids, finished in order.
        let grids = [cfg(), cfg().with_seed(1), cfg().with_seed(2)];
        let mut ids = Vec::new();
        for g in &grids {
            let out = q.submit(g);
            let (id, config) = q.take_next().unwrap();
            assert_eq!(id, out.job_id);
            q.finish(&id, Ok(config.run()));
            ids.push(id);
        }
        // The oldest-finished job is gone: unknown id, report dropped, and a
        // resubmission of its grid runs fresh instead of hitting the cache.
        assert_eq!(q.evicted, 1);
        assert!(!q.jobs.contains_key(&ids[0]));
        assert!(q.jobs.contains_key(&ids[1]) && q.jobs.contains_key(&ids[2]));
        let resubmit = q.submit(&grids[0]);
        assert!(!resubmit.deduped, "evicted grids re-run");
        assert_ne!(resubmit.job_id, ids[0]);
        // The two retained jobs still serve as the result cache.
        assert!(q.submit(&grids[1]).deduped);
        assert!(q.submit(&grids[2]).deduped);
    }

    #[test]
    fn unbounded_cache_never_evicts_and_failed_jobs_do_not_count() {
        let mut q = JobQueue::default();
        assert_eq!(q.cache_cap, usize::MAX);
        for seed in 0..4 {
            q.submit(&cfg().with_seed(seed));
            let (id, config) = q.take_next().unwrap();
            let result = if seed % 2 == 0 {
                Ok(config.run())
            } else {
                Err("boom".to_string())
            };
            q.finish(&id, result);
        }
        assert_eq!(q.evicted, 0);
        assert_eq!(q.jobs.len(), 4);
        // Failed jobs never enter the eviction queue.
        let mut capped = JobQueue::with_cache_cap(1);
        capped.submit(&cfg());
        let (id, _) = capped.take_next().unwrap();
        capped.finish(&id, Err("boom".to_string()));
        assert_eq!(capped.done_order.len(), 0);
        assert!(capped.jobs.contains_key(&id));
    }

    #[test]
    fn failed_jobs_do_not_poison_the_dedup_cache() {
        let mut q = JobQueue::default();
        let first = q.submit(&cfg());
        let (id, _) = q.take_next().unwrap();
        q.finish(&id, Err("transient failure".to_string()));
        // Resubmission of the same grid retries as a fresh job…
        let retry = q.submit(&cfg());
        assert!(!retry.deduped);
        assert_ne!(retry.job_id, first.job_id);
        assert_eq!(q.pending.len(), 1);
        // …the failed job stays queryable, and further submissions dedup
        // onto the retry, not the corpse.
        assert_eq!(q.jobs[&first.job_id].status, JobStatus::Failed);
        let third = q.submit(&cfg());
        assert!(third.deduped);
        assert_eq!(third.job_id, retry.job_id);
    }
}
