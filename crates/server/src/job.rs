//! Job bookkeeping for the serving coordinator: identifiers, lifecycle
//! states, shard-level work units, executor leases, and the queue/dedup-cache
//! state machine.
//!
//! A submitted job's canonical grid is first **subtracted** against the
//! [`crate::points::PointStore`] — every point some previous job already
//! computed (record or skip) is served from cache — and only the remainder
//! is decomposed into [`bitmod::shard::ShardSpec`] work units at accept
//! time, partitioned group-aware by [`bitmod::shard::plan_units`] so points
//! sharing an algorithm side land on the same executor.  Executors — in-process threads or remote
//! `bitmod-cli worker --attach` processes — *lease* work units one at a
//! time; a lease either completes (the executor returns the
//! [`ShardReport`], whose points feed back into the store) or expires
//! (missed heartbeats), in which case the work unit is requeued for another
//! executor.  When the last unit of a job lands, the coordinator assembles
//! cached and fresh outcomes with [`bitmod::shard::assemble_report`],
//! bit-identically to an unsharded run.  A fully-cached submission finishes
//! at accept time without dispatching anything.

use bitmod::shard::{assemble_report, CachedPoint, ShardProgress, ShardReport, ShardSpec};
use bitmod::sweep::{SweepConfig, SweepReport};
use serde::{Deserialize, Serialize};
use std::collections::{HashMap, VecDeque};
use std::sync::Arc;
use std::time::{Duration, Instant};

use crate::points::PointStore;

/// Lifecycle state of a submitted sweep job.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum JobStatus {
    /// Accepted and waiting for an executor (no shard leased yet).
    Queued,
    /// At least one shard is leased or completed.
    Running,
    /// Finished; the report is available.
    Done,
    /// Execution failed (the reason is in [`JobView::error`]).
    Failed,
}

impl JobStatus {
    /// The wire spelling of this status (`queued`, `running`, …).
    pub fn name(&self) -> &'static str {
        match self {
            JobStatus::Queued => "queued",
            JobStatus::Running => "running",
            JobStatus::Done => "done",
            JobStatus::Failed => "failed",
        }
    }
}

/// One job tracked by the coordinator.
#[derive(Debug)]
pub struct Job {
    /// The job identifier (`job-1`, `job-2`, … in submission order).
    pub id: String,
    /// The canonicalized configuration this job executes.
    pub config: SweepConfig,
    /// The dedup/result-cache key ([`SweepConfig::cache_key`]).
    pub cache_key: String,
    /// Current lifecycle state.
    pub status: JobStatus,
    /// How many submissions were coalesced into this job (1 = no dedup hit).
    pub submissions: usize,
    /// Total points of the canonical grid.
    pub points_total: usize,
    /// Outcomes served from the point store at decompose time, as
    /// `(grid index, outcome)` pairs — the cached half of the final report.
    pub cached: Vec<(usize, CachedPoint)>,
    /// The grid indices this job actually computes (ascending): the grid
    /// minus the cached points.  [`bitmod::shard::plan_units`] partitions it
    /// group-aware into [`Job::units`] at decompose time.
    pub remainder: Arc<Vec<usize>>,
    /// The exact grid indices each work unit computes, indexed by unit
    /// index — the group-aware partition of [`Job::remainder`]: points
    /// sharing an algorithm side land in the same unit whenever the unit
    /// count allows, so one executor process computes each side once.
    pub units: Vec<Vec<usize>>,
    /// Completed work-unit reports, indexed by unit index (`None` = not yet
    /// returned by any executor).
    pub shard_reports: Vec<Option<Arc<ShardReport>>>,
    /// Algorithm-cache hits accumulated across this job's landed shards.
    pub algo_hits: usize,
    /// Algorithm sides this job's landed shards computed fresh.
    pub algo_misses: usize,
    /// The completed (assembled) report, once `status == Done`.
    pub report: Option<Arc<SweepReport>>,
    /// The failure reason, once `status == Failed`.
    pub error: Option<String>,
}

/// A read-only snapshot of a job, safe to hand to protocol handlers.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct JobView {
    /// The job identifier.
    pub id: String,
    /// Current lifecycle state.
    pub status: JobStatus,
    /// How many submissions were coalesced into this job.
    pub submissions: usize,
    /// Work units the job's uncached remainder was decomposed into (0 when
    /// the point store covered the whole grid at submit).
    pub shards_total: usize,
    /// Work units completed so far.
    pub shards_done: usize,
    /// Total points of the canonical grid.
    pub points_total: usize,
    /// Grid points served from the point store at submit.
    pub points_cached: usize,
    /// Number of completed records, once done.
    pub records: Option<usize>,
    /// Number of skipped grid points, once done.
    pub skipped: Option<usize>,
    /// Sweep wall-clock seconds, once done.
    pub wall_seconds: Option<f64>,
    /// Algorithm-cache hits across the job's landed shards (live execution
    /// only — a journal-replayed job reports 0).
    pub algo_hits: usize,
    /// Algorithm sides the job's landed shards computed fresh (live
    /// execution only — a journal-replayed job reports 0).
    pub algo_misses: usize,
    /// The failure reason, if the job failed.
    pub error: Option<String>,
}

impl Job {
    /// Snapshots the job for protocol responses.
    pub fn view(&self) -> JobView {
        JobView {
            id: self.id.clone(),
            status: self.status,
            submissions: self.submissions,
            shards_total: self.shard_reports.len(),
            shards_done: self.shards_done(),
            points_total: self.points_total,
            points_cached: self.cached.len(),
            records: self.report.as_ref().map(|r| r.records.len()),
            skipped: self.report.as_ref().map(|r| r.skipped.len()),
            wall_seconds: self.report.as_ref().map(|r| r.wall_seconds),
            algo_hits: self.algo_hits,
            algo_misses: self.algo_misses,
            error: self.error.clone(),
        }
    }

    /// Number of shard reports that have landed.  (The merge consumes the
    /// per-shard reports when the job finishes, so a `Done` job reports all
    /// of its shards as done rather than re-counting the drained slots.)
    pub fn shards_done(&self) -> usize {
        if self.status == JobStatus::Done {
            self.shard_reports.len()
        } else {
            self.shard_reports.iter().filter(|r| r.is_some()).count()
        }
    }
}

/// One dispatchable work unit: a shard of a job.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WorkItem {
    /// The owning job.
    pub job: String,
    /// The shard of the job's grid this unit covers.
    pub shard: ShardSpec,
}

/// A work unit handed to an executor, together with everything needed to run
/// it: the lease identifier (echoed on completion/heartbeat) and the job's
/// canonical configuration.
#[derive(Debug, Clone)]
pub struct WorkAssignment {
    /// Lease identifier; completing or heart-beating quotes it.
    pub lease: u64,
    /// The owning job.
    pub job: String,
    /// The work unit to run (unit `k` of the job's `n`).
    pub shard: ShardSpec,
    /// The job's (canonicalized) sweep configuration.
    pub config: SweepConfig,
    /// The exact grid indices this unit computes — its group-aware share of
    /// the job's uncached remainder, not of the whole grid.
    pub indices: Vec<usize>,
}

/// An outstanding lease: which executor holds which work unit, and when the
/// lease expires without a heartbeat (`None` = never, the in-process case).
#[derive(Debug, Clone)]
pub struct Lease {
    /// The owning job.
    pub job: String,
    /// The leased shard.
    pub shard: ShardSpec,
    /// The executor holding the lease.
    pub executor: String,
    /// Expiry deadline; `None` for in-process executors (a thread cannot
    /// silently vanish — a panic fails the shard explicitly).
    pub expires: Option<Instant>,
}

/// A registered executor.
#[derive(Debug, Clone)]
pub struct ExecutorInfo {
    /// The executor identifier (`exec-1`, …).
    pub id: String,
    /// Self-reported name (`worker@host`, or `local-0` for threads).
    pub name: String,
    /// Whether the executor attached over the wire (leases expire) rather
    /// than running in-process (leases do not).
    pub remote: bool,
    /// Shards this executor has completed.
    pub shards_done: usize,
    /// Last time this executor touched the coordinator (attach, lease,
    /// heartbeat, or landing).  Remote executors idle past a TTL are pruned
    /// from the registry — re-attaching workers would otherwise grow it (and
    /// `ping`'s executor counts) forever.
    pub last_seen: Instant,
}

/// The coordinator's mutable state: shard-level FIFO dispatch queue, job
/// table, lease table, executor registry, and the dedup index from canonical
/// configuration keys to job ids.
///
/// The dispatch queue holds [`WorkItem`]s; the job table owns the data.  A
/// submission whose canonical key matches an existing job (whatever its
/// state) attaches to that job instead of enqueueing a duplicate — a
/// completed job doubles as the result cache.
///
/// The result cache is size-capped: at most [`JobQueue::cache_cap`] `Done`
/// jobs are retained, and finishing a job beyond the cap evicts the
/// oldest-finished one (FIFO) — its report is dropped, its id becomes
/// unknown, and a resubmission of its grid runs fresh.  Queued, running and
/// failed jobs are never evicted.
#[derive(Debug)]
pub struct JobQueue {
    /// Jobs by id.
    pub jobs: HashMap<String, Job>,
    /// Queued work units, oldest job first.
    pub pending: VecDeque<WorkItem>,
    /// Outstanding leases by lease id.
    pub leases: HashMap<u64, Lease>,
    /// Registered executors by id.
    pub executors: HashMap<String, ExecutorInfo>,
    /// Canonical config key → job id (the dedup/result cache).
    pub by_key: HashMap<String, String>,
    /// The point-level result cache every accepted grid is subtracted
    /// against.  Fed by shard landings (and journal replay); entries are
    /// dropped when the last job covering them is evicted.
    pub points: PointStore,
    /// Total jobs created (drives id assignment; dedup hits do not count).
    pub submitted: usize,
    /// Total leases issued (drives lease-id assignment).
    pub leased: u64,
    /// Total executors registered (drives executor-id assignment).
    pub registered: usize,
    /// Work units requeued after a lease expired.
    pub requeued: usize,
    /// True once shutdown has been requested; executors drain and exit.
    pub shutting_down: bool,
    /// Shards each job is decomposed into at submit time.
    pub shards_per_job: usize,
    /// Maximum number of `Done` jobs retained as the result cache
    /// (`usize::MAX` = unbounded, the default).
    pub cache_cap: usize,
    /// `Done` job ids in finish order, oldest first (the FIFO eviction
    /// queue).
    pub done_order: VecDeque<String>,
    /// Total jobs evicted from the result cache so far.
    pub evicted: usize,
    /// Monotone progress counter, bumped on every observable state change
    /// (shard completion, job transition) — what `watch` streams key off.
    pub epoch: u64,
    /// Last executor touch (registration, lease, heartbeat, or landing).
    /// A shutting-down pure coordinator uses this to decide its queued work
    /// is stranded — no executor exists to drain it — instead of hanging.
    pub last_executor_activity: Instant,
}

impl Default for JobQueue {
    fn default() -> Self {
        Self::new(usize::MAX, 1)
    }
}

/// Outcome of a submission: the job id plus whether it deduplicated onto an
/// existing job.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SubmitOutcome {
    /// The job the submission attached to.
    pub job_id: String,
    /// True if an existing job (queued, running, or finished) absorbed the
    /// submission.
    pub deduped: bool,
    /// Jobs the result-cache cap evicted because this submission completed
    /// instantly from the point store (empty otherwise — jobs that dispatch
    /// work evict on their *landing*, not at submit).
    pub evicted: Vec<String>,
}

/// What landed when a shard report was accepted: the job's new state, plus
/// the ids of any jobs the result cache evicted as a consequence.
#[derive(Debug, Clone)]
pub struct ShardLanding {
    /// The owning job.
    pub job: String,
    /// The completed shard.
    pub shard: ShardSpec,
    /// Shards done / total after this landing.
    pub progress: (usize, usize),
    /// What the completed shard itself contributed (records/skipped/wall),
    /// when a report actually landed — `None` for failures and ignored
    /// duplicates.
    pub shard_progress: Option<ShardProgress>,
    /// The accepted shard report itself, when one landed (`None` for
    /// failures and ignored duplicates) — what the journal's `shard-done`
    /// event persists so replay can re-seed the point store.
    pub report: Option<Arc<ShardReport>>,
    /// The job's status after this landing (`Done` when this was the last
    /// shard and the merge succeeded, `Failed` if the merge refused).
    pub status: JobStatus,
    /// Jobs evicted from the result cache by this job finishing.
    pub evicted: Vec<String>,
    /// True when the report was silently dropped (the job had already
    /// failed or finished — e.g. a late report after a lease expired and
    /// the requeued copy completed first).
    pub ignored: bool,
}

impl JobQueue {
    /// An empty queue retaining at most `cache_cap` completed reports and
    /// decomposing each job into `shards_per_job` work units.
    pub fn new(cache_cap: usize, shards_per_job: usize) -> Self {
        Self {
            jobs: HashMap::new(),
            pending: VecDeque::new(),
            leases: HashMap::new(),
            executors: HashMap::new(),
            by_key: HashMap::new(),
            points: PointStore::new(),
            submitted: 0,
            leased: 0,
            registered: 0,
            requeued: 0,
            shutting_down: false,
            shards_per_job: shards_per_job.max(1),
            cache_cap,
            done_order: VecDeque::new(),
            evicted: 0,
            epoch: 0,
            last_executor_activity: Instant::now(),
        }
    }

    /// An empty queue retaining at most `cache_cap` completed reports (one
    /// work unit per job).
    pub fn with_cache_cap(cache_cap: usize) -> Self {
        Self::new(cache_cap, 1)
    }

    /// Registers an executor and returns its id.
    pub fn register_executor(&mut self, name: &str, remote: bool) -> String {
        self.last_executor_activity = Instant::now();
        self.registered += 1;
        let id = format!("exec-{}", self.registered);
        self.executors.insert(
            id.clone(),
            ExecutorInfo {
                id: id.clone(),
                name: name.to_string(),
                remote,
                shards_done: 0,
                last_seen: Instant::now(),
            },
        );
        id
    }

    /// Marks an executor as alive (its registry entry survives pruning).
    fn touch_executor(&mut self, executor: &str) {
        self.last_executor_activity = Instant::now();
        if let Some(e) = self.executors.get_mut(executor) {
            e.last_seen = Instant::now();
        }
    }

    /// Submits a configuration: either attaches to the job already covering
    /// its canonical form (the whole-job dedup fast path), or creates a job,
    /// subtracts its grid against the point store, and enqueues work units
    /// over the uncached remainder.  A fully-cached grid finishes right
    /// here, without dispatching anything.
    ///
    /// A `Failed` job does not absorb new submissions — resubmitting its
    /// grid enqueues a fresh job (the retry path), and the new job takes
    /// over the dedup index entry.  The failed job stays queryable by id.
    pub fn submit(&mut self, config: &SweepConfig) -> SubmitOutcome {
        let canonical = config.canonicalized();
        let cache_key = canonical.cache_key();
        if let Some(id) = self.by_key.get(&cache_key) {
            let job = self.jobs.get_mut(id).expect("dedup index points at a job");
            if job.status != JobStatus::Failed {
                job.submissions += 1;
                return SubmitOutcome {
                    job_id: id.clone(),
                    deduped: true,
                    evicted: Vec::new(),
                };
            }
        }
        self.submitted += 1;
        let id = format!("job-{}", self.submitted);
        self.insert_job(id.clone(), canonical, cache_key);
        let evicted = self.decompose_job(&id);
        SubmitOutcome {
            job_id: id,
            deduped: false,
            evicted,
        }
    }

    /// Creates a `Queued` job with the given id, without work units yet —
    /// the shared head of [`JobQueue::submit`] and journal replay (replay
    /// defers [`JobQueue::decompose_job`] until the point store is fully
    /// re-seeded).
    pub(crate) fn insert_job(&mut self, id: String, canonical: SweepConfig, key: String) {
        let points_total = canonical.grid().len();
        self.jobs.insert(
            id.clone(),
            Job {
                id: id.clone(),
                config: canonical,
                cache_key: key.clone(),
                status: JobStatus::Queued,
                submissions: 1,
                points_total,
                cached: Vec::new(),
                remainder: Arc::new(Vec::new()),
                units: Vec::new(),
                shard_reports: Vec::new(),
                algo_hits: 0,
                algo_misses: 0,
                report: None,
                error: None,
            },
        );
        self.by_key.insert(key, id.clone());
        self.epoch += 1;
    }

    /// Subtracts the job's canonical grid against the point store and
    /// enqueues work units over the remainder, partitioned **group-aware**
    /// by [`bitmod::shard::plan_units`]: at most `min(shards_per_job,
    /// algorithm groups)` units, each non-empty, with no algorithm group
    /// ever split across units — so one executor process computes each
    /// expensive algorithm side exactly once.  A job whose grid the store
    /// covers entirely is assembled and finished on the spot; the ids of
    /// any jobs that finishing evicted are returned (empty otherwise).
    ///
    /// Every cache hit registers the job as a co-owner of the point, so the
    /// cached half of its grid cannot be evicted out from under it.
    pub(crate) fn decompose_job(&mut self, id: &str) -> Vec<String> {
        let config = self.jobs[id].config.clone();
        let grid = config.grid();
        let mut cached = Vec::new();
        let mut remainder = Vec::new();
        for (i, point) in grid.iter().enumerate() {
            match self
                .points
                .hit(&point.cache_key(&config.proxy, config.seed), id)
            {
                Some(outcome) => cached.push((i, outcome)),
                None => remainder.push(i),
            }
        }
        let unit_indices = bitmod::shard::plan_units(&config, &remainder, self.shards_per_job);
        let units = unit_indices.len();
        {
            let job = self.jobs.get_mut(id).expect("decomposing id exists");
            job.cached = cached;
            job.remainder = Arc::new(remainder);
            job.units = unit_indices;
            job.shard_reports = vec![None; units];
        }
        self.epoch += 1;
        if units == 0 {
            // Fully cached: assemble from the store alone and finish now.
            let result = {
                let job = &self.jobs[id];
                assemble_report(&job.config, &job.cached, &Vec::<Arc<ShardReport>>::new())
            };
            return self.finish(id, result).1;
        }
        for shard in ShardSpec::all(units) {
            self.pending.push_back(WorkItem {
                job: id.to_string(),
                shard,
            });
        }
        Vec::new()
    }

    /// Leases the oldest queued work unit to `executor`; `None` if the queue
    /// is empty.  Remote leases expire `timeout` from now unless extended by
    /// [`JobQueue::heartbeat`]; in-process leases (`timeout == None`) never
    /// expire.
    pub fn lease_next(
        &mut self,
        executor: &str,
        timeout: Option<Duration>,
    ) -> Option<WorkAssignment> {
        self.touch_executor(executor);
        let item = self.pending.pop_front()?;
        let job = self.jobs.get_mut(&item.job).expect("queued id exists");
        if job.status == JobStatus::Queued {
            job.status = JobStatus::Running;
            self.epoch += 1;
        }
        self.leased += 1;
        let lease = self.leased;
        self.leases.insert(
            lease,
            Lease {
                job: item.job.clone(),
                shard: item.shard,
                executor: executor.to_string(),
                expires: timeout.map(|t| Instant::now() + t),
            },
        );
        // Unit k owns the k-th group-aware partition of the uncached
        // remainder, precomputed at decompose time by
        // [`bitmod::shard::plan_units`].
        let indices: Vec<usize> = job.units.get(item.shard.index).cloned().unwrap_or_default();
        Some(WorkAssignment {
            lease,
            job: item.job,
            shard: item.shard,
            config: job.config.clone(),
            indices,
        })
    }

    /// Extends a remote lease's deadline to `timeout` from now.
    pub fn heartbeat(
        &mut self,
        executor: &str,
        lease: u64,
        timeout: Duration,
    ) -> Result<(), String> {
        self.touch_executor(executor);
        let l = self
            .leases
            .get_mut(&lease)
            .ok_or_else(|| format!("unknown or expired lease {lease}"))?;
        if l.executor != executor {
            return Err(format!("lease {lease} is held by {}", l.executor));
        }
        if l.expires.is_some() {
            l.expires = Some(Instant::now() + timeout);
        }
        Ok(())
    }

    /// Requeues every lease that expired before `now` (front of the queue,
    /// so recovered shards run before fresh work) and returns the affected
    /// `(job, shard, executor)` triples.  Also prunes *remote* executors
    /// with no outstanding lease that have not touched the coordinator for
    /// `executor_ttl` — re-attaching workers get a fresh id on every attach,
    /// and without pruning the registry (and `ping`'s executor counts) would
    /// grow forever.
    pub fn reap_expired(
        &mut self,
        now: Instant,
        executor_ttl: Duration,
    ) -> Vec<(String, ShardSpec, String)> {
        let expired: Vec<u64> = self
            .leases
            .iter()
            .filter(|(_, l)| l.expires.is_some_and(|e| e <= now))
            .map(|(&id, _)| id)
            .collect();
        let mut reaped = Vec::new();
        for id in expired {
            let lease = self.leases.remove(&id).expect("listed above");
            // A failed job's pending items were dropped; don't resurrect it.
            if self
                .jobs
                .get(&lease.job)
                .is_some_and(|j| matches!(j.status, JobStatus::Queued | JobStatus::Running))
            {
                self.pending.push_front(WorkItem {
                    job: lease.job.clone(),
                    shard: lease.shard,
                });
                self.requeued += 1;
            }
            reaped.push((lease.job, lease.shard, lease.executor));
        }
        if !reaped.is_empty() {
            self.epoch += 1;
        }
        let leased: std::collections::HashSet<&str> =
            self.leases.values().map(|l| l.executor.as_str()).collect();
        self.executors.retain(|id, e| {
            !e.remote || leased.contains(id.as_str()) || e.last_seen + executor_ttl > now
        });
        reaped
    }

    /// Accepts a completed shard report for `lease`, feeding every landed
    /// point (record *and* skip) into the point store.  When it is the
    /// job's last outstanding unit, assembles the cached and fresh outcomes
    /// and finishes the job (enforcing the result-cache cap).
    pub fn complete_shard(
        &mut self,
        executor: &str,
        lease: u64,
        report: ShardReport,
    ) -> Result<ShardLanding, String> {
        self.touch_executor(executor);
        let l = self
            .leases
            .get(&lease)
            .ok_or_else(|| format!("unknown or expired lease {lease}"))?;
        if l.executor != executor {
            return Err(format!("lease {lease} is held by {}", l.executor));
        }
        if report.shard != l.shard {
            return Err(format!(
                "lease {lease} covers shard {} but the report is for {}",
                l.shard, report.shard
            ));
        }
        let lease = self.leases.remove(&lease).expect("validated above");
        if let Some(e) = self.executors.get_mut(executor) {
            e.shards_done += 1;
        }
        let job = self
            .jobs
            .get_mut(&lease.job)
            .ok_or_else(|| format!("job {} no longer exists", lease.job))?;
        let shard = lease.shard;
        // A late report for a job that already failed (or finished via a
        // requeued copy of this very shard) is dropped, not an error.
        if job.status != JobStatus::Running || job.shard_reports[shard.index].is_some() {
            return Ok(ShardLanding {
                job: lease.job,
                shard,
                progress: (job.shards_done(), job.shard_reports.len()),
                shard_progress: None,
                report: None,
                status: job.status,
                evicted: Vec::new(),
                ignored: true,
            });
        }
        let shard_progress = Some(report.progress());
        let (proxy, seed) = (job.config.proxy, job.config.seed);
        job.algo_hits += report.algo_hits;
        job.algo_misses += report.algo_misses;
        let report = Arc::new(report);
        job.shard_reports[shard.index] = Some(Arc::clone(&report));
        let done = job.shards_done();
        let total = job.shard_reports.len();
        self.seed_points(&lease.job, proxy, seed, &report);
        self.epoch += 1;
        if done < total {
            return Ok(ShardLanding {
                job: lease.job,
                shard,
                progress: (done, total),
                shard_progress,
                report: Some(report),
                status: JobStatus::Running,
                evicted: Vec::new(),
                ignored: false,
            });
        }
        // Last unit: assemble the cached points with the fresh reports.
        let result = {
            let job = self.jobs.get_mut(&lease.job).expect("job checked above");
            let shards: Vec<Arc<ShardReport>> = job
                .shard_reports
                .iter_mut()
                .map(|r| r.take().expect("all units present"))
                .collect();
            assemble_report(&job.config, &job.cached, &shards)
        };
        let (status, evicted) = self.finish(&lease.job, result);
        Ok(ShardLanding {
            job: lease.job,
            shard,
            progress: (done, total),
            shard_progress,
            report: Some(report),
            status,
            evicted,
            ignored: false,
        })
    }

    /// Feeds every point of a landed shard report into the point store,
    /// owned by `job`.  Skips are cached as skips — the typed
    /// [`CachedPoint`] split keeps them from ever serving as records.
    pub(crate) fn seed_points(
        &mut self,
        job: &str,
        proxy: bitmod::llm::proxy::ProxyConfig,
        seed: u64,
        report: &ShardReport,
    ) {
        for r in &report.records {
            self.points.insert(
                r.record.point.cache_key(&proxy, seed),
                CachedPoint::Record(Box::new(r.record.clone())),
                job,
            );
        }
        for (_, point, reason) in &report.skipped {
            self.points.insert(
                point.cache_key(&proxy, seed),
                CachedPoint::Skipped(reason.clone()),
                job,
            );
        }
    }

    /// Feeds every point of a completed job's final report into the point
    /// store, owned by `job` — the journal-replay twin of
    /// [`JobQueue::seed_points`] (a `done` event carries the assembled
    /// [`SweepReport`], not per-shard reports).
    pub(crate) fn seed_sweep_points(
        &mut self,
        job: &str,
        proxy: bitmod::llm::proxy::ProxyConfig,
        seed: u64,
        report: &SweepReport,
    ) {
        for r in &report.records {
            self.points.insert(
                r.point.cache_key(&proxy, seed),
                CachedPoint::Record(Box::new(r.clone())),
                job,
            );
        }
        for (point, reason) in &report.skipped {
            self.points.insert(
                point.cache_key(&proxy, seed),
                CachedPoint::Skipped(reason.clone()),
                job,
            );
        }
    }

    /// Fails the job owning `lease` (an executor hit a panic running its
    /// shard).  The job's queued work units are dropped; reports from its
    /// other outstanding leases will be ignored when they arrive.
    pub fn fail_shard(
        &mut self,
        executor: &str,
        lease: u64,
        error: String,
    ) -> Result<ShardLanding, String> {
        self.touch_executor(executor);
        let l = self
            .leases
            .get(&lease)
            .ok_or_else(|| format!("unknown or expired lease {lease}"))?;
        if l.executor != executor {
            return Err(format!("lease {lease} is held by {}", l.executor));
        }
        let lease = self.leases.remove(&lease).expect("validated above");
        let job_id = lease.job.clone();
        let already_terminal = self
            .jobs
            .get(&job_id)
            .is_some_and(|j| !matches!(j.status, JobStatus::Queued | JobStatus::Running));
        if !already_terminal {
            self.pending.retain(|w| w.job != job_id);
            self.finish(&job_id, Err(error));
        }
        let job = self.jobs.get(&job_id).expect("failed job stays queryable");
        Ok(ShardLanding {
            job: job_id.clone(),
            shard: lease.shard,
            progress: (job.shards_done(), job.shard_reports.len()),
            shard_progress: None,
            report: None,
            status: job.status,
            evicted: Vec::new(),
            ignored: already_terminal,
        })
    }

    /// Records a finished job, then enforces the result-cache cap; returns
    /// the job's new status and any evicted job ids.
    pub fn finish(
        &mut self,
        id: &str,
        result: Result<SweepReport, String>,
    ) -> (JobStatus, Vec<String>) {
        let job = self.jobs.get_mut(id).expect("finishing id exists");
        self.epoch += 1;
        match result {
            Ok(report) => {
                job.report = Some(Arc::new(report));
                job.status = JobStatus::Done;
                self.done_order.push_back(id.to_string());
                (JobStatus::Done, self.evict_beyond_cap())
            }
            Err(e) => {
                job.error = Some(e);
                job.status = JobStatus::Failed;
                (JobStatus::Failed, Vec::new())
            }
        }
    }

    /// Drops the oldest-finished `Done` jobs until at most
    /// [`JobQueue::cache_cap`] remain, removing them from the job table,
    /// (when they still own it) the dedup index, and the point store —
    /// which keeps every point some *surviving* job still covers, so shared
    /// points outlive the job that first computed them.
    fn evict_beyond_cap(&mut self) -> Vec<String> {
        let mut evicted = Vec::new();
        while self.done_order.len() > self.cache_cap {
            let old = self
                .done_order
                .pop_front()
                .expect("len > cap implies non-empty");
            if let Some(job) = self.jobs.remove(&old) {
                // A failed-then-retried grid may have re-pointed the dedup
                // index at a newer job; only drop the entry this job owns.
                if self.by_key.get(&job.cache_key).is_some_and(|id| *id == old) {
                    self.by_key.remove(&job.cache_key);
                }
            }
            self.points.evict_job(&old);
            self.evicted += 1;
            evicted.push(old);
        }
        evicted
    }

    /// Whether any job is queued or running (work pending or leases
    /// outstanding).
    pub fn has_live_jobs(&self) -> bool {
        !self.pending.is_empty()
            || !self.leases.is_empty()
            || self
                .jobs
                .values()
                .any(|j| matches!(j.status, JobStatus::Queued | JobStatus::Running))
    }

    /// Snapshots every job, in submission order.
    pub fn views(&self) -> Vec<JobView> {
        let mut views: Vec<&Job> = self.jobs.values().collect();
        views.sort_by_key(|j| {
            j.id.strip_prefix("job-")
                .and_then(|n| n.parse::<usize>().ok())
                .unwrap_or(usize::MAX)
        });
        views.into_iter().map(|j| j.view()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bitmod::llm::config::LlmModel;
    use bitmod::llm::proxy::ProxyConfig;
    use bitmod::shard::{run_partial_shard, run_shard};
    use bitmod::sweep::SweepDtype;

    fn cfg() -> SweepConfig {
        SweepConfig::new(vec![LlmModel::Phi2B], vec![4]).with_proxy(ProxyConfig::tiny())
    }

    /// Lease + run + complete every pending work unit of the queue in order.
    fn run_all(q: &mut JobQueue, executor: &str) {
        while let Some(work) = q.lease_next(executor, None) {
            let report = run_partial_shard(&work.config, work.shard, &work.indices);
            q.complete_shard(executor, work.lease, report)
                .expect("live lease completes");
        }
    }

    #[test]
    fn submit_dedups_on_canonical_form() {
        let mut q = JobQueue::default();
        let first = q.submit(&cfg());
        assert!(!first.deduped);
        // Same grid spelled differently (reversed dtype list) coalesces.
        let mut reordered = cfg();
        reordered.dtypes = vec![SweepDtype::IntAsym, SweepDtype::BitMod];
        let second = q.submit(&reordered);
        assert!(second.deduped);
        assert_eq!(second.job_id, first.job_id);
        assert_eq!(q.jobs[&first.job_id].submissions, 2);
        assert_eq!(q.pending.len(), 1);
        // A genuinely different grid gets its own job.
        let third = q.submit(&cfg().with_seed(7));
        assert!(!third.deduped);
        assert_ne!(third.job_id, first.job_id);
    }

    #[test]
    fn lifecycle_queued_leased_done() {
        let mut q = JobQueue::default();
        let exec = q.register_executor("local-0", false);
        let out = q.submit(&cfg());
        assert_eq!(q.jobs[&out.job_id].status, JobStatus::Queued);
        let work = q.lease_next(&exec, None).expect("one queued work unit");
        assert_eq!(work.job, out.job_id);
        assert_eq!(work.shard, ShardSpec::new(0, 1).unwrap());
        assert_eq!(q.jobs[&out.job_id].status, JobStatus::Running);
        assert!(q.has_live_jobs());
        let report = run_shard(&work.config, work.shard);
        let landing = q.complete_shard(&exec, work.lease, report).unwrap();
        assert_eq!(landing.status, JobStatus::Done);
        assert_eq!(landing.progress, (1, 1));
        assert!(!q.has_live_jobs());
        let view = &q.views()[0];
        assert_eq!(view.status, JobStatus::Done);
        assert_eq!((view.shards_done, view.shards_total), (1, 1));
        assert!(view.records.unwrap() > 0);
        assert_eq!(q.executors[&exec].shards_done, 1);
        // Dedup hit after completion: the done job is the result cache.
        assert!(q.submit(&cfg()).deduped);
    }

    #[test]
    fn multi_shard_jobs_merge_bit_identically() {
        let mut q = JobQueue::new(usize::MAX, 3);
        let exec = q.register_executor("local-0", false);
        let out = q.submit(&cfg().with_seed(5));
        // The 2-point grid needs at most 2 of the 3 configured units: empty
        // work units are never enqueued.
        assert_eq!(q.pending.len(), 2);
        run_all(&mut q, &exec);
        let job = &q.jobs[&out.job_id];
        assert_eq!(job.status, JobStatus::Done);
        let direct = cfg().with_seed(5).canonicalized().run();
        assert_eq!(
            serde_json::to_string(&job.report.as_ref().unwrap().records).unwrap(),
            serde_json::to_string(&direct.records).unwrap()
        );
    }

    #[test]
    fn expired_leases_requeue_for_another_executor() {
        let mut q = JobQueue::new(usize::MAX, 2);
        let flaky = q.register_executor("remote-flaky", true);
        let steady = q.register_executor("remote-steady", true);
        let out = q.submit(&cfg());
        let work = q
            .lease_next(&flaky, Some(Duration::from_millis(1)))
            .unwrap();
        // Nothing expired yet at the moment of leasing…
        assert!(q
            .reap_expired(
                Instant::now() - Duration::from_secs(1),
                Duration::from_secs(3600),
            )
            .is_empty());
        // …but once the deadline passes the shard goes back to the front.
        std::thread::sleep(Duration::from_millis(2));
        let reaped = q.reap_expired(Instant::now(), Duration::from_secs(3600));
        assert_eq!(reaped.len(), 1);
        assert_eq!(reaped[0].0, out.job_id);
        assert_eq!(reaped[0].2, flaky);
        assert_eq!(q.requeued, 1);
        assert_eq!(q.pending.front().unwrap().shard, work.shard);
        // The steady executor picks everything up and the job completes.
        run_all(&mut q, &steady);
        assert_eq!(q.jobs[&out.job_id].status, JobStatus::Done);
        // The flaky executor's late report is ignored, not an error — but
        // its lease is long gone, so the completion is rejected.
        let report = run_shard(&work.config, work.shard);
        assert!(q.complete_shard(&flaky, work.lease, report).is_err());
    }

    #[test]
    fn heartbeats_extend_remote_leases() {
        let mut q = JobQueue::new(usize::MAX, 1);
        let exec = q.register_executor("remote", true);
        q.submit(&cfg());
        let work = q
            .lease_next(&exec, Some(Duration::from_millis(50)))
            .unwrap();
        q.heartbeat(&exec, work.lease, Duration::from_secs(60))
            .unwrap();
        std::thread::sleep(Duration::from_millis(60));
        assert!(
            q.reap_expired(Instant::now(), Duration::from_secs(3600))
                .is_empty(),
            "heartbeat extended"
        );
        // Foreign executors cannot touch the lease.
        assert!(q
            .heartbeat("exec-99", work.lease, Duration::from_secs(1))
            .is_err());
        assert!(q.heartbeat(&exec, 999, Duration::from_secs(1)).is_err());
    }

    #[test]
    fn idle_remote_executors_are_pruned_but_local_and_leased_ones_are_not() {
        let mut q = JobQueue::new(usize::MAX, 2);
        let local = q.register_executor("local-0", false);
        let idle = q.register_executor("remote-idle", true);
        let busy = q.register_executor("remote-busy", true);
        q.submit(&cfg());
        let _held = q
            .lease_next(&busy, Some(Duration::from_secs(60)))
            .expect("busy leases a shard");
        std::thread::sleep(Duration::from_millis(5));
        // TTL shorter than the sleep: the idle remote is pruned, the local
        // thread and the lease-holding remote survive.
        q.reap_expired(Instant::now(), Duration::from_millis(1));
        assert!(!q.executors.contains_key(&idle), "idle remote pruned");
        assert!(q.executors.contains_key(&local), "locals never pruned");
        assert!(q.executors.contains_key(&busy), "leased remotes survive");
        // Touching an executor refreshes its TTL.
        q.heartbeat(&busy, 1, Duration::from_secs(60)).unwrap();
        q.reap_expired(Instant::now(), Duration::from_secs(3600));
        assert!(q.executors.contains_key(&busy));
    }

    #[test]
    fn failed_shards_fail_the_job_and_drop_its_pending_units() {
        let mut q = JobQueue::new(usize::MAX, 3);
        let exec = q.register_executor("local-0", false);
        let out = q.submit(&cfg());
        let work = q.lease_next(&exec, None).unwrap();
        let landing = q
            .fail_shard(&exec, work.lease, "worker exploded".to_string())
            .unwrap();
        assert_eq!(landing.status, JobStatus::Failed);
        assert_eq!(q.jobs[&out.job_id].status, JobStatus::Failed);
        assert_eq!(q.views()[0].error.as_deref(), Some("worker exploded"));
        assert!(q.pending.is_empty(), "remaining work units dropped");
        assert!(!q.has_live_jobs());
    }

    #[test]
    fn result_cache_evicts_oldest_done_jobs_fifo() {
        let mut q = JobQueue::with_cache_cap(2);
        let exec = q.register_executor("local-0", false);
        // Three distinct grids, finished in order.
        let grids = [cfg(), cfg().with_seed(1), cfg().with_seed(2)];
        let mut ids = Vec::new();
        for g in &grids {
            let out = q.submit(g);
            run_all(&mut q, &exec);
            ids.push(out.job_id);
        }
        // The oldest-finished job is gone: unknown id, report dropped, and a
        // resubmission of its grid runs fresh instead of hitting the cache.
        assert_eq!(q.evicted, 1);
        assert!(!q.jobs.contains_key(&ids[0]));
        assert!(q.jobs.contains_key(&ids[1]) && q.jobs.contains_key(&ids[2]));
        let resubmit = q.submit(&grids[0]);
        assert!(!resubmit.deduped, "evicted grids re-run");
        assert_ne!(resubmit.job_id, ids[0]);
        // The two retained jobs still serve as the result cache.
        assert!(q.submit(&grids[1]).deduped);
        assert!(q.submit(&grids[2]).deduped);
    }

    #[test]
    fn unbounded_cache_never_evicts_and_failed_jobs_do_not_count() {
        let mut q = JobQueue::default();
        let exec = q.register_executor("local-0", false);
        assert_eq!(q.cache_cap, usize::MAX);
        for seed in 0..4 {
            q.submit(&cfg().with_seed(seed));
            let work = q.lease_next(&exec, None).unwrap();
            if seed % 2 == 0 {
                let report = run_shard(&work.config, work.shard);
                q.complete_shard(&exec, work.lease, report).unwrap();
            } else {
                q.fail_shard(&exec, work.lease, "boom".to_string()).unwrap();
            }
        }
        assert_eq!(q.evicted, 0);
        assert_eq!(q.jobs.len(), 4);
        // Failed jobs never enter the eviction queue.
        assert_eq!(q.done_order.len(), 2);
    }

    #[test]
    fn failed_jobs_do_not_poison_the_dedup_cache() {
        let mut q = JobQueue::default();
        let exec = q.register_executor("local-0", false);
        let first = q.submit(&cfg());
        let work = q.lease_next(&exec, None).unwrap();
        q.fail_shard(&exec, work.lease, "transient failure".to_string())
            .unwrap();
        // Resubmission of the same grid retries as a fresh job…
        let retry = q.submit(&cfg());
        assert!(!retry.deduped);
        assert_ne!(retry.job_id, first.job_id);
        assert_eq!(q.pending.len(), 1);
        // …the failed job stays queryable, and further submissions dedup
        // onto the retry, not the corpse.
        assert_eq!(q.jobs[&first.job_id].status, JobStatus::Failed);
        let third = q.submit(&cfg());
        assert!(third.deduped);
        assert_eq!(third.job_id, retry.job_id);
    }

    fn grid_cfg(bits: Vec<u8>) -> SweepConfig {
        SweepConfig::new(vec![LlmModel::Phi2B], bits).with_proxy(ProxyConfig::tiny())
    }

    #[test]
    fn overlapping_grids_dispatch_only_the_set_difference() {
        let mut q = JobQueue::new(usize::MAX, 4);
        let exec = q.register_executor("local-0", false);
        q.submit(&grid_cfg(vec![3]));
        run_all(&mut q, &exec);

        // The superset grid: 4 points, 2 already computed by the first job.
        let (hits0, misses0) = (q.points.hits(), q.points.misses());
        let out = q.submit(&grid_cfg(vec![3, 4]));
        assert!(!out.deduped, "different canonical grid, no whole-job dedup");
        assert_eq!(
            q.points.hits() - hits0,
            2,
            "the overlap is served from cache"
        );
        assert_eq!(
            q.points.misses() - misses0,
            2,
            "only the set-difference misses"
        );
        let view = q.jobs[&out.job_id].view();
        assert_eq!((view.points_total, view.points_cached), (4, 2));
        // 4 configured units, but only the 2-point remainder to cover.
        assert_eq!(view.shards_total, 2);
        assert_eq!(q.pending.len(), 2);

        run_all(&mut q, &exec);
        let direct = grid_cfg(vec![3, 4]).canonicalized().run();
        let served = q.jobs[&out.job_id].report.as_ref().unwrap();
        assert_eq!(
            serde_json::to_string(&served.records).unwrap(),
            serde_json::to_string(&direct.records).unwrap(),
            "cached + fresh assembly must be bit-identical to a direct sweep"
        );
        assert_eq!(served.to_csv(), direct.to_csv());
    }

    #[test]
    fn fully_cached_submissions_finish_at_submit_without_dispatch() {
        let mut q = JobQueue::new(usize::MAX, 2);
        let exec = q.register_executor("local-0", false);
        q.submit(&grid_cfg(vec![3, 4]));
        run_all(&mut q, &exec);

        // A strict subset grid is not a whole-job dedup hit, but every one
        // of its points is cached: it completes with zero work units.
        let out = q.submit(&grid_cfg(vec![4]));
        assert!(!out.deduped);
        let job = &q.jobs[&out.job_id];
        assert_eq!(job.status, JobStatus::Done);
        let view = job.view();
        assert_eq!((view.shards_total, view.shards_done), (0, 0));
        assert_eq!((view.points_total, view.points_cached), (2, 2));
        assert!(q.pending.is_empty(), "nothing dispatched");
        let direct = grid_cfg(vec![4]).canonicalized().run();
        assert_eq!(
            serde_json::to_string(&job.report.as_ref().unwrap().records).unwrap(),
            serde_json::to_string(&direct.records).unwrap()
        );
    }

    #[test]
    fn skipped_points_cache_as_skips_and_never_become_records() {
        let mut q = JobQueue::default();
        let exec = q.register_executor("local-0", false);
        // bitmod@6 is invalid, so this grid lands both records and skips.
        q.submit(&grid_cfg(vec![4, 6]));
        run_all(&mut q, &exec);

        // The regression pin: the skipped point sits in the store as a
        // *skip*, not as a record.
        let canonical = grid_cfg(vec![4, 6]).canonicalized();
        let direct = canonical.run();
        assert!(
            !direct.skipped.is_empty(),
            "precondition: the grid has skips"
        );
        for (point, reason) in &direct.skipped {
            let key = point.cache_key(&canonical.proxy, canonical.seed);
            match q.points.hit(&key, "probe") {
                Some(CachedPoint::Skipped(cached_reason)) => {
                    assert_eq!(&cached_reason, reason)
                }
                other => panic!("skipped point cached as {other:?}"),
            }
        }

        // An overlapping grid of only the invalid points completes from
        // cache with the identical skip list and zero records.
        let out = q.submit(&grid_cfg(vec![6]));
        assert!(!out.deduped);
        let job = &q.jobs[&out.job_id];
        assert_eq!(job.status, JobStatus::Done, "skips replay without dispatch");
        let served = job.report.as_ref().unwrap();
        let direct6 = grid_cfg(vec![6]).canonicalized().run();
        assert_eq!(served.skipped, direct6.skipped);
        assert_eq!(
            serde_json::to_string(&served.records).unwrap(),
            serde_json::to_string(&direct6.records).unwrap()
        );
    }

    #[test]
    fn evicting_a_job_drops_only_its_exclusive_points() {
        let mut q = JobQueue::with_cache_cap(1);
        let exec = q.register_executor("local-0", false);
        q.submit(&grid_cfg(vec![3]));
        run_all(&mut q, &exec);
        // The superset job reuses (and co-owns) the bits-3 points; when it
        // finishes, the cap evicts the first job — but not those points.
        let b = q.submit(&grid_cfg(vec![3, 4]));
        run_all(&mut q, &exec);
        assert_eq!(q.evicted, 1, "cap of one evicted the first job");

        // bits-3 points survive through the superset job's ownership…
        let c = q.submit(&grid_cfg(vec![3]));
        assert!(!c.deduped, "the evicted job no longer dedups");
        assert_eq!(q.jobs[&c.job_id].status, JobStatus::Done);
        assert_eq!(q.jobs[&c.job_id].view().points_cached, 2);
        // …and finishing instantly evicted the superset job in turn (cap 1),
        // whose bits-4 points nobody else covers: they stop serving hits.
        assert!(!q.jobs.contains_key(&b.job_id));
        let d = q.submit(&grid_cfg(vec![4]));
        assert!(!d.deduped);
        assert_eq!(
            q.jobs[&d.job_id].view().points_cached,
            0,
            "exclusive points dropped"
        );
        assert_eq!(
            q.jobs[&d.job_id].status,
            JobStatus::Queued,
            "recompute required"
        );
    }

    #[test]
    fn epoch_advances_on_observable_progress() {
        let mut q = JobQueue::new(usize::MAX, 2);
        let exec = q.register_executor("local-0", false);
        let e0 = q.epoch;
        q.submit(&cfg());
        assert!(q.epoch > e0, "submit bumps the epoch");
        let before = q.epoch;
        let work = q.lease_next(&exec, None).unwrap();
        let report = run_shard(&work.config, work.shard);
        q.complete_shard(&exec, work.lease, report).unwrap();
        assert!(q.epoch > before, "shard completion bumps the epoch");
    }
}
