//! Durable job state: an append-only JSON journal under `serve --state-dir`.
//!
//! Every observable job transition is appended as one JSON object per line
//! to `<state-dir>/journal.jsonl` — `submit` (with the full canonical
//! configuration), `dispatch`, `shard-done` (with the full shard report, so
//! every point computed before a crash survives it), `requeue`, `done`
//! (with the full assembled report), `failed`, and `evict`.  On startup the
//! coordinator replays the journal: completed jobs rebuild the dedup/result
//! cache (cache-cap eviction re-applied), failed jobs stay queryable, every
//! point recorded by a `shard-done` or `done` event re-seeds the
//! point-level result cache, and every job that was queued or in flight at
//! the crash is re-decomposed against that re-seeded cache — so only its
//! not-yet-landed points re-dispatch.
//!
//! Replay is tolerant of a torn tail: a crash mid-append leaves a partial
//! final line, which is skipped (and counted) rather than refusing to start,
//! and healed with a newline so post-recovery appends land on their own
//! lines instead of concatenating onto the damage.
//! The journal then keeps growing in place — restart after restart appends
//! to the same file, so the full submit/dispatch/complete history of a
//! deployment is one greppable artifact.
//!
//! Appends are **sequenced, not synchronous**: [`Journal::append`] assigns
//! the event a sequence number and hands it to a dedicated writer thread,
//! which serializes, writes, and flushes off the caller's lock — so the
//! coordinator no longer serializes a `done` event's full report while
//! holding its state lock.  Event order is still bit-identical to the
//! state-transition order (sequence numbers are assigned under that lock,
//! and the channel preserves them), and durability-at-return is restored
//! where it matters by blocking on [`JournalFlush::wait_for`] *after* the
//! lock is released.  Dropping the journal drains and joins the writer, so
//! every appended event is on disk before the file can be reopened.

use bitmod::shard::{ShardProgress, ShardReport, ShardSpec};
use bitmod::sweep::{SweepConfig, SweepReport};
use serde::{Serialize, Value};
use std::fs::OpenOptions;
use std::io::Write;
use std::path::{Path, PathBuf};
use std::sync::{mpsc, Arc, Condvar, Mutex};
use std::thread::JoinHandle;

/// One journal line, in coordinator life-cycle order.
#[derive(Debug, Clone)]
pub enum JournalEvent {
    /// A new (non-deduplicated) job was accepted.
    Submit {
        /// The job id.
        job: String,
        /// The canonicalized configuration the job executes.
        config: Box<SweepConfig>,
    },
    /// A shard was leased to an executor.
    Dispatch {
        /// The job id.
        job: String,
        /// The leased shard (`k/n`).
        shard: ShardSpec,
        /// The executor holding the lease.
        executor: String,
    },
    /// A shard report landed.
    ShardDone {
        /// The job id.
        job: String,
        /// The completed shard (`k/n`).
        shard: ShardSpec,
        /// The executor that ran it.
        executor: String,
        /// What the shard contributed (records/skipped/wall), when known.
        progress: Option<ShardProgress>,
        /// The full shard report, when journaled — lets replay re-seed the
        /// point store with mid-job landings.  `None` on a job's final
        /// landing (the `done` event that follows carries every point) and
        /// in journals written before the point cache existed.
        report: Option<Arc<ShardReport>>,
    },
    /// A lease expired and its shard went back on the queue.
    Requeue {
        /// The job id.
        job: String,
        /// The requeued shard (`k/n`).
        shard: ShardSpec,
        /// The executor whose lease expired.
        executor: String,
    },
    /// A job finished; the merged report is recorded in full so the result
    /// cache can be rebuilt on replay.  (An `Arc`, not an owned copy: the
    /// coordinator journals the very report it caches, without cloning a
    /// potentially large record set under its state lock.)
    Done {
        /// The job id.
        job: String,
        /// The merged sweep report.
        report: Arc<SweepReport>,
    },
    /// A job failed.
    Failed {
        /// The job id.
        job: String,
        /// The failure reason.
        error: String,
    },
    /// A completed job was evicted from the result cache.
    Evict {
        /// The job id.
        job: String,
    },
}

impl JournalEvent {
    /// The event's line spelling (single-line JSON, `ev`-tagged).
    pub fn to_line(&self) -> String {
        let mut fields: Vec<(String, Value)> = Vec::new();
        let mut push = |k: &str, v: Value| fields.push((k.to_string(), v));
        match self {
            JournalEvent::Submit { job, config } => {
                push("ev", Value::Str("submit".into()));
                push("job", Value::Str(job.clone()));
                push("config", config.to_value());
            }
            JournalEvent::Dispatch {
                job,
                shard,
                executor,
            } => {
                push("ev", Value::Str("dispatch".into()));
                push("job", Value::Str(job.clone()));
                push("shard", Value::Str(shard.label()));
                push("executor", Value::Str(executor.clone()));
            }
            JournalEvent::ShardDone {
                job,
                shard,
                executor,
                progress,
                report,
            } => {
                push("ev", Value::Str("shard-done".into()));
                push("job", Value::Str(job.clone()));
                push("shard", Value::Str(shard.label()));
                push("executor", Value::Str(executor.clone()));
                if let Some(p) = progress {
                    push("records", Value::U64(p.records as u64));
                    push("skipped", Value::U64(p.skipped as u64));
                    push("wall_seconds", Value::F64(p.wall_seconds));
                }
                if let Some(r) = report {
                    push("report", r.to_value());
                }
            }
            JournalEvent::Requeue {
                job,
                shard,
                executor,
            } => {
                push("ev", Value::Str("requeue".into()));
                push("job", Value::Str(job.clone()));
                push("shard", Value::Str(shard.label()));
                push("executor", Value::Str(executor.clone()));
            }
            JournalEvent::Done { job, report } => {
                push("ev", Value::Str("done".into()));
                push("job", Value::Str(job.clone()));
                push("report", report.to_value());
            }
            JournalEvent::Failed { job, error } => {
                push("ev", Value::Str("failed".into()));
                push("job", Value::Str(job.clone()));
                push("error", Value::Str(error.clone()));
            }
            JournalEvent::Evict { job } => {
                push("ev", Value::Str("evict".into()));
                push("job", Value::Str(job.clone()));
            }
        }
        serde_json::to_string(&Value::Map(fields)).expect("journal events always serialize")
    }

    /// Parses one journal line back into an event.
    pub fn parse(line: &str) -> Result<JournalEvent, String> {
        let value =
            serde_json::parse_value(line.trim()).map_err(|e| format!("invalid JSON: {e}"))?;
        let map = value
            .as_map()
            .ok_or("journal line must be a JSON object".to_string())?;
        let get = |key: &str| map.iter().find(|(k, _)| k == key).map(|(_, v)| v);
        let str_field = |key: &str| -> Result<String, String> {
            get(key)
                .and_then(Value::as_str)
                .map(str::to_string)
                .ok_or_else(|| format!("missing `{key}` field"))
        };
        let ev = str_field("ev")?;
        let job = str_field("job")?;
        let shard = || -> Result<ShardSpec, String> { ShardSpec::parse(&str_field("shard")?) };
        match ev.as_str() {
            "submit" => {
                let config = get("config").ok_or("missing `config` field".to_string())?;
                let config: SweepConfig =
                    serde_json::from_value(config).map_err(|e| format!("bad config: {e}"))?;
                Ok(JournalEvent::Submit {
                    job,
                    config: Box::new(config),
                })
            }
            "dispatch" => Ok(JournalEvent::Dispatch {
                job,
                shard: shard()?,
                executor: str_field("executor")?,
            }),
            "shard-done" => {
                let shard = shard()?;
                let counts = (
                    get("records").and_then(Value::as_u64),
                    get("skipped").and_then(Value::as_u64),
                    get("wall_seconds").and_then(Value::as_f64),
                );
                let progress = match counts {
                    (Some(records), Some(skipped), Some(wall_seconds)) => Some(ShardProgress {
                        shard_index: shard.index,
                        shard_count: shard.count,
                        grid_points: (records + skipped) as usize,
                        records: records as usize,
                        skipped: skipped as usize,
                        wall_seconds,
                    }),
                    _ => None,
                };
                let report = match get("report") {
                    Some(v) => Some(Arc::new(
                        serde_json::from_value::<ShardReport>(v)
                            .map_err(|e| format!("bad report: {e}"))?,
                    )),
                    None => None,
                };
                Ok(JournalEvent::ShardDone {
                    job,
                    shard,
                    executor: str_field("executor")?,
                    progress,
                    report,
                })
            }
            "requeue" => Ok(JournalEvent::Requeue {
                job,
                shard: shard()?,
                executor: str_field("executor")?,
            }),
            "done" => {
                let report = get("report").ok_or("missing `report` field".to_string())?;
                let report: SweepReport =
                    serde_json::from_value(report).map_err(|e| format!("bad report: {e}"))?;
                Ok(JournalEvent::Done {
                    job,
                    report: Arc::new(report),
                })
            }
            "failed" => Ok(JournalEvent::Failed {
                job,
                error: str_field("error")?,
            }),
            "evict" => Ok(JournalEvent::Evict { job }),
            other => Err(format!("unknown journal event `{other}`")),
        }
    }
}

/// What replaying an existing journal found.
#[derive(Debug)]
pub struct Replay {
    /// Every parseable event, in append order.
    pub events: Vec<JournalEvent>,
    /// Lines that did not parse (a torn tail from a crash mid-append, or
    /// hand-editing damage) — skipped, not fatal.
    pub skipped_lines: usize,
}

/// Flush progress shared between [`Journal::append`] callers and the writer
/// thread: the highest sequence number durably on disk, plus a condvar to
/// wait on it.  Obtained via [`Journal::flush_handle`] so callers can block
/// on durability *without* holding whatever lock guards the journal itself.
#[derive(Debug, Default)]
pub struct JournalFlush {
    flushed: Mutex<u64>,
    cond: Condvar,
}

impl JournalFlush {
    /// Blocks until the event with sequence number `seq` has been written
    /// and flushed (or its write failed — a full disk must degrade
    /// durability, not deadlock the daemon; the writer warns on stderr).
    pub fn wait_for(&self, seq: u64) {
        let mut flushed = self.flushed.lock().expect("journal flush lock");
        while *flushed < seq {
            flushed = self.cond.wait(flushed).expect("journal flush lock");
        }
    }

    fn advance(&self, seq: u64) {
        let mut flushed = self.flushed.lock().expect("journal flush lock");
        *flushed = (*flushed).max(seq);
        self.cond.notify_all();
    }
}

/// The append handle for a state directory's journal.  Serialization and
/// I/O happen on a dedicated writer thread (see the module docs); dropping
/// the handle drains and joins it.
#[derive(Debug)]
pub struct Journal {
    path: PathBuf,
    sender: Option<mpsc::Sender<(u64, JournalEvent)>>,
    writer: Option<JoinHandle<()>>,
    seq: u64,
    flush: Arc<JournalFlush>,
}

impl Journal {
    /// Opens (creating if needed) `<dir>/journal.jsonl` for appending, first
    /// replaying whatever it already contains.  A torn tail (a crash
    /// mid-append) is *healed* with a newline before anything else is
    /// written — otherwise the first post-recovery event would concatenate
    /// onto the partial line and corrupt itself along with it.
    pub fn open(dir: &Path) -> Result<(Journal, Replay), String> {
        std::fs::create_dir_all(dir)
            .map_err(|e| format!("could not create state dir {}: {e}", dir.display()))?;
        let path = dir.join("journal.jsonl");
        let mut events = Vec::new();
        let mut skipped_lines = 0;
        let mut torn_tail = false;
        match std::fs::read_to_string(&path) {
            Ok(text) => {
                torn_tail = !text.is_empty() && !text.ends_with('\n');
                for line in text.lines().filter(|l| !l.trim().is_empty()) {
                    match JournalEvent::parse(line) {
                        Ok(ev) => events.push(ev),
                        Err(_) => skipped_lines += 1,
                    }
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {}
            Err(e) => return Err(format!("could not read {}: {e}", path.display())),
        }
        let mut file = OpenOptions::new()
            .create(true)
            .append(true)
            .open(&path)
            .map_err(|e| format!("could not open {}: {e}", path.display()))?;
        if torn_tail {
            writeln!(file)
                .and_then(|_| file.flush())
                .map_err(|e| format!("could not heal {}: {e}", path.display()))?;
        }
        let flush = Arc::new(JournalFlush::default());
        let (sender, receiver) = mpsc::channel::<(u64, JournalEvent)>();
        let writer = {
            let flush = Arc::clone(&flush);
            let path = path.clone();
            std::thread::spawn(move || {
                // A full disk or yanked volume must not take the daemon down
                // with a panic; the in-memory state stays authoritative for
                // this process.  But silence would let durability lapse
                // unnoticed — say so once, not per event.
                let mut write_failure_reported = false;
                for (seq, event) in receiver {
                    let result = writeln!(file, "{}", event.to_line()).and_then(|_| file.flush());
                    match result {
                        Err(e) => {
                            if !write_failure_reported {
                                write_failure_reported = true;
                                eprintln!(
                                    "[serve] journal write to {} failed ({e}) — durability is \
                                     lapsing; jobs finished from here on will NOT survive a \
                                     restart",
                                    path.display()
                                );
                            }
                        }
                        Ok(()) => write_failure_reported = false,
                    }
                    // Advance even on failure: durability degrades, waiters
                    // must not deadlock.
                    flush.advance(seq);
                }
            })
        };
        Ok((
            Journal {
                path,
                sender: Some(sender),
                writer: Some(writer),
                seq: 0,
                flush,
            },
            Replay {
                events,
                skipped_lines,
            },
        ))
    }

    /// Queues one event for the writer thread and returns its sequence
    /// number.  Call under whatever lock orders the events — sequence
    /// numbers (and the channel) preserve exactly that order on disk — then
    /// release the lock and pass the number to [`JournalFlush::wait_for`]
    /// when the caller must not return before the event is durable.
    pub fn append(&mut self, event: &JournalEvent) -> u64 {
        self.seq += 1;
        let seq = self.seq;
        // Cloning is cheap by construction: the bulky payloads (shard and
        // sweep reports) live behind `Arc`s.
        let undeliverable = match &self.sender {
            Some(sender) => sender.send((seq, event.clone())).is_err(),
            None => true,
        };
        if undeliverable {
            // The writer is gone (only possible once teardown began);
            // unblock any waiter rather than stranding it.
            self.flush.advance(seq);
        }
        seq
    }

    /// The highest sequence number assigned so far (0 = nothing appended).
    pub fn seq(&self) -> u64 {
        self.seq
    }

    /// The flush tracker, for blocking on durability without holding the
    /// lock that guards this `Journal`.
    pub fn flush_handle(&self) -> Arc<JournalFlush> {
        Arc::clone(&self.flush)
    }

    /// The journal file's path.
    pub fn path(&self) -> &Path {
        &self.path
    }
}

impl Drop for Journal {
    /// Drains and joins the writer thread: every appended event is written
    /// and flushed before the handle is gone, so a drop-then-reopen sees
    /// the complete journal.
    fn drop(&mut self) {
        self.sender.take(); // hang up: the writer's receive loop ends
        if let Some(writer) = self.writer.take() {
            let _ = writer.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bitmod::llm::config::LlmModel;
    use bitmod::llm::proxy::ProxyConfig;

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("bitmod-journal-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn cfg() -> SweepConfig {
        SweepConfig::new(vec![LlmModel::Phi2B], vec![4]).with_proxy(ProxyConfig::tiny())
    }

    #[test]
    fn every_event_kind_roundtrips_through_its_line() {
        let report = cfg().run();
        let shard = ShardSpec::new(1, 3).unwrap();
        let shard_report = bitmod::shard::run_shard(&cfg().canonicalized(), shard);
        let events = [
            JournalEvent::Submit {
                job: "job-1".into(),
                config: Box::new(cfg().canonicalized()),
            },
            JournalEvent::Dispatch {
                job: "job-1".into(),
                shard,
                executor: "exec-1".into(),
            },
            JournalEvent::ShardDone {
                job: "job-1".into(),
                shard,
                executor: "exec-1".into(),
                progress: Some(ShardProgress {
                    shard_index: 1,
                    shard_count: 3,
                    grid_points: 2,
                    records: 1,
                    skipped: 1,
                    wall_seconds: 0.25,
                }),
                report: Some(Arc::new(shard_report)),
            },
            JournalEvent::ShardDone {
                job: "job-1".into(),
                shard,
                executor: "exec-1".into(),
                progress: None,
                report: None,
            },
            JournalEvent::Requeue {
                job: "job-1".into(),
                shard,
                executor: "exec-1".into(),
            },
            JournalEvent::Done {
                job: "job-1".into(),
                report: Arc::new(report),
            },
            JournalEvent::Failed {
                job: "job-2".into(),
                error: "boom".into(),
            },
            JournalEvent::Evict {
                job: "job-1".into(),
            },
        ];
        for ev in &events {
            let line = ev.to_line();
            assert!(!line.contains('\n'), "journal lines are single lines");
            let back = JournalEvent::parse(&line).expect("journal lines parse back");
            assert_eq!(back.to_line(), line, "roundtrip is stable");
        }
    }

    #[test]
    fn open_replays_appends_and_tolerates_a_torn_tail() {
        let dir = tmp_dir("torn");
        {
            let (mut journal, replay) = Journal::open(&dir).unwrap();
            assert!(replay.events.is_empty());
            journal.append(&JournalEvent::Submit {
                job: "job-1".into(),
                config: Box::new(cfg().canonicalized()),
            });
            journal.append(&JournalEvent::Failed {
                job: "job-1".into(),
                error: "boom".into(),
            });
        }
        // Simulate a crash mid-append: a truncated final line.
        {
            use std::io::Write;
            let mut f = OpenOptions::new()
                .append(true)
                .open(dir.join("journal.jsonl"))
                .unwrap();
            write!(f, "{{\"ev\":\"done\",\"job\":\"jo").unwrap();
        }
        let (mut journal, replay) = Journal::open(&dir).unwrap();
        assert_eq!(replay.events.len(), 2);
        assert_eq!(replay.skipped_lines, 1, "the torn tail is skipped");
        assert!(matches!(&replay.events[0], JournalEvent::Submit { job, .. } if job == "job-1"));
        assert!(matches!(&replay.events[1], JournalEvent::Failed { job, .. } if job == "job-1"));
        // The torn tail was healed on open: an event appended after recovery
        // lands on its own line instead of concatenating onto the partial one
        // (which would corrupt both).
        journal.append(&JournalEvent::Evict {
            job: "job-1".into(),
        });
        drop(journal);
        let (_, replay) = Journal::open(&dir).unwrap();
        assert_eq!(replay.events.len(), 3, "post-recovery appends replay");
        assert_eq!(replay.skipped_lines, 1, "still just the one torn line");
        assert!(matches!(&replay.events[2], JournalEvent::Evict { job } if job == "job-1"));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn malformed_lines_are_named_errors() {
        for (line, needle) in [
            ("not json", "invalid JSON"),
            ("[1]", "must be a JSON object"),
            (r#"{"job":"job-1"}"#, "missing `ev`"),
            (r#"{"ev":"nope","job":"job-1"}"#, "unknown journal event"),
            (r#"{"ev":"submit","job":"job-1"}"#, "missing `config`"),
            (
                r#"{"ev":"dispatch","job":"job-1","executor":"e"}"#,
                "missing `shard`",
            ),
        ] {
            let err = JournalEvent::parse(line).expect_err(line);
            assert!(err.contains(needle), "`{line}` → `{err}`");
        }
    }
}
