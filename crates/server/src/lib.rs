//! Serving infrastructure for BitMoD sweeps — the long-running side of
//! `bitmod-cli`.
//!
//! The offline sweep flow (`bitmod-cli sweep`) pays harness synthesis and
//! process startup on every invocation.  This crate wraps the same
//! [`bitmod::sweep`] machinery in a daemon so heavy traffic amortizes both:
//!
//! * [`job`] — the [`job::JobQueue`] state machine: FIFO queue, job table,
//!   and a dedup/result cache keyed by the canonicalized sweep configuration
//!   ([`bitmod::sweep::SweepConfig::cache_key`]), so identical grids —
//!   however spelled — execute once and every later submission is a cache
//!   hit.
//! * [`engine`] — worker threads draining the queue.  All jobs share one
//!   [`bitmod_llm::eval::HarnessPool`], which batches the expensive
//!   per-model harness synthesis across overlapping sweep requests; with
//!   `shards > 1` every job runs as a deterministic `k/n`-sharded sweep
//!   merged by [`bitmod::shard::merge_shards`].
//! * [`proto`] — the line-delimited JSON wire protocol (`submit` / `status`
//!   / `result` / `list` / `ping` / `shutdown`), identical over stdin/stdout
//!   and TCP.
//! * [`serve`] — the stdio and TCP serve loops `bitmod-cli serve` runs.
//!
//! No new dependencies: the protocol rides on the vendored `serde_json` shim
//! and `std::net`, consistent with the workspace's offline policy.
//!
//! ```
//! use bitmod::llm::config::LlmModel;
//! use bitmod::llm::proxy::ProxyConfig;
//! use bitmod::sweep::SweepConfig;
//! use bitmod_server::engine::{EngineConfig, ServeEngine};
//!
//! let handle = ServeEngine::start(EngineConfig::default());
//! let cfg = SweepConfig::new(vec![LlmModel::Phi2B], vec![4])
//!     .with_proxy(ProxyConfig::tiny());
//! let first = handle.engine().submit(&cfg);
//! let second = handle.engine().submit(&cfg); // dedup: same canonical grid
//! assert_eq!(first.job_id, second.job_id);
//! handle.engine().drain();
//! assert!(handle.engine().result(&first.job_id).unwrap().is_ok());
//! handle.shutdown();
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod engine;
pub mod job;
pub mod proto;
pub mod serve;

pub use engine::{EngineConfig, EngineHandle, ServeEngine};
pub use job::{JobQueue, JobStatus, JobView};
