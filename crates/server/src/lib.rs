//! Serving infrastructure for BitMoD sweeps — the long-running side of
//! `bitmod-cli`.
//!
//! The offline sweep flow (`bitmod-cli sweep`) pays harness synthesis and
//! process startup on every invocation.  This crate wraps the same
//! [`bitmod::sweep`] machinery in a **coordinator/executor** daemon so heavy
//! traffic amortizes both and scales past one machine:
//!
//! * [`job`] — the [`job::JobQueue`] state machine: each accepted grid is
//!   subtracted against the point-level result cache and only the remainder
//!   is decomposed into [`bitmod::shard::ShardSpec`] work units; a
//!   shard-level dispatch queue, executor leases with expiry, and a
//!   dedup/result cache keyed by the canonicalized sweep configuration
//!   ([`bitmod::sweep::SweepConfig::cache_key`]), so identical grids —
//!   however spelled — execute once and every later submission is a cache
//!   hit.
//! * [`points`] — the [`points::PointStore`] behind that subtraction: one
//!   entry per computed [`bitmod::sweep::SweepPoint`] (records *and* skip
//!   reasons), fed by every shard landing and evicted together with the
//!   jobs that cover it.
//! * [`coordinator`] — the supervisory half: accepts jobs, leases work
//!   units, requeues the shards of expired leases, assembles cached and
//!   freshly returned [`bitmod::shard::ShardReport`]s bit-identically via
//!   [`bitmod::shard::assemble_report`], and journals every transition when
//!   a state directory is configured.
//! * [`executor`] — the autonomous half, in both flavors: in-process
//!   threads sharing one [`bitmod_llm::eval::HarnessPool`] (the default,
//!   behavior-preserving path) and remote `bitmod-cli worker --attach`
//!   processes that register over TCP, lease, heartbeat, and return shard
//!   reports.
//! * [`journal`] — the append-only JSON journal under `serve --state-dir`:
//!   replayed on startup so queued and in-flight jobs resume, completed
//!   jobs keep serving from the rebuilt result cache, and every journaled
//!   point (from `shard-done` and `done` events) re-seeds the point store.
//! * [`proto`] — the line-delimited JSON wire protocol (`submit` /
//!   `status` / `result` / `watch` / `list` / `ping` / `shutdown` plus the
//!   executor verbs `attach` / `lease` / `heartbeat` / `shard_result`),
//!   identical over stdin/stdout and TCP.
//! * [`serve`] — the stdio and TCP serve loops `bitmod-cli serve` runs,
//!   including the streaming `watch` handler.
//!
//! No new dependencies: the protocol rides on the vendored `serde_json` shim
//! and `std::net`, consistent with the workspace's offline policy.
//!
//! ```
//! use bitmod::llm::config::LlmModel;
//! use bitmod::llm::proxy::ProxyConfig;
//! use bitmod::sweep::SweepConfig;
//! use bitmod_server::coordinator::{Coordinator, CoordinatorConfig};
//!
//! let handle = Coordinator::start(CoordinatorConfig::default());
//! let cfg = SweepConfig::new(vec![LlmModel::Phi2B], vec![4])
//!     .with_proxy(ProxyConfig::tiny());
//! let first = handle.coordinator().submit(&cfg);
//! let second = handle.coordinator().submit(&cfg); // dedup: same canonical grid
//! assert_eq!(first.job_id, second.job_id);
//! handle.coordinator().drain();
//! assert!(handle.coordinator().result(&first.job_id).unwrap().is_ok());
//! handle.shutdown();
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod coordinator;
pub mod executor;
pub mod job;
pub mod journal;
pub mod points;
pub mod proto;
pub mod serve;

pub use coordinator::{Coordinator, CoordinatorConfig, CoordinatorHandle, CoordinatorStats};
pub use job::{JobQueue, JobStatus, JobView};
pub use points::PointStore;
