//! The point-level result cache: the coordinator's incremental sweep
//! database.
//!
//! Whole-job dedup (the `cache_key → job id` index in
//! [`crate::job::JobQueue`]) only helps when two grids are *exactly* equal
//! after canonicalization.  The [`PointStore`] re-keys caching at the finest
//! deterministic unit — one [`bitmod::sweep::SweepPoint`] under one
//! `(proxy, seed)` context, keyed by
//! [`bitmod::sweep::SweepPoint::cache_key`] — so a submitted grid is
//! *subtracted* against everything any previous job computed and only the
//! remainder is dispatched.  Records are bit-deterministic, which is what
//! makes serving a cached record indistinguishable from recomputing it.
//!
//! Skips are first-class outcomes ([`CachedPoint::Skipped`]): a skip reason
//! is a pure function of the point, so overlapping grids do not re-validate
//! invalid combinations, and the typed split guarantees a skipped point can
//! never be served back as a real record.
//!
//! Eviction piggybacks on the job cache cap: every entry tracks the set of
//! jobs whose coverage includes it (the job that computed it plus every job
//! that later reused it), and evicting a job drops only the points **no
//! other job still covers** — a point shared with a surviving job keeps
//! serving hits.

use bitmod::shard::CachedPoint;
use std::collections::{HashMap, HashSet};

/// One cached outcome plus the jobs whose coverage includes it.
#[derive(Debug)]
struct Entry {
    outcome: CachedPoint,
    /// Jobs (by id) that computed or reused this point.  The entry lives as
    /// long as at least one of them does.
    owners: HashSet<String>,
}

/// The coordinator's point-level result cache.  See the module docs.
#[derive(Debug, Default)]
pub struct PointStore {
    entries: HashMap<String, Entry>,
    hits: usize,
    misses: usize,
}

impl PointStore {
    /// An empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of points currently cached.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the store holds no points.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Lookups that found a cached outcome, since startup.
    pub fn hits(&self) -> usize {
        self.hits
    }

    /// Lookups that missed, since startup.
    pub fn misses(&self) -> usize {
        self.misses
    }

    /// Looks up `key` on behalf of `job`, counting a hit or a miss.  A hit
    /// registers `job` as a co-owner, so the point outlives the eviction of
    /// the job that originally computed it for as long as any job covering
    /// it survives.
    pub fn hit(&mut self, key: &str, job: &str) -> Option<CachedPoint> {
        match self.entries.get_mut(key) {
            Some(entry) => {
                entry.owners.insert(job.to_string());
                self.hits += 1;
                Some(entry.outcome.clone())
            }
            None => {
                self.misses += 1;
                None
            }
        }
    }

    /// Records an outcome for `key`, owned (at least) by `job`.  The first
    /// writer wins: outcomes are bit-deterministic, so any duplicate insert
    /// carries an identical value and only extends the owner set.
    pub fn insert(&mut self, key: String, outcome: CachedPoint, job: &str) {
        let entry = self.entries.entry(key).or_insert_with(|| Entry {
            outcome,
            owners: HashSet::new(),
        });
        entry.owners.insert(job.to_string());
    }

    /// Removes `job` from every owner set and drops the points no remaining
    /// job covers.  Called when the job cache cap evicts a job: its
    /// exclusively-owned points must stop serving hits, while points a
    /// surviving job also covers stay.
    pub fn evict_job(&mut self, job: &str) {
        self.entries.retain(|_, entry| {
            entry.owners.remove(job);
            !entry.owners.is_empty()
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bitmod::llm::config::LlmModel;
    use bitmod::llm::proxy::ProxyConfig;
    use bitmod::sweep::SweepConfig;

    fn keys() -> Vec<String> {
        let cfg = SweepConfig::new(vec![LlmModel::Phi2B], vec![3, 4])
            .with_proxy(ProxyConfig::tiny())
            .canonicalized();
        cfg.grid()
            .iter()
            .map(|p| p.cache_key(&cfg.proxy, cfg.seed))
            .collect()
    }

    #[test]
    fn hits_and_misses_are_counted_and_skips_stay_skips() {
        let mut store = PointStore::new();
        let keys = keys();
        assert!(store.hit(&keys[0], "job-1").is_none());
        assert_eq!((store.hits(), store.misses()), (0, 1));

        // A skip cached for job-1 comes back as a skip — never as a record.
        store.insert(
            keys[0].clone(),
            CachedPoint::Skipped("invalid".into()),
            "job-1",
        );
        match store.hit(&keys[0], "job-2") {
            Some(CachedPoint::Skipped(reason)) => assert_eq!(reason, "invalid"),
            other => panic!("skip served as {other:?}"),
        }
        assert_eq!((store.hits(), store.misses()), (1, 1));
        assert_eq!(store.len(), 1);
    }

    #[test]
    fn eviction_drops_only_points_no_surviving_job_covers() {
        let mut store = PointStore::new();
        let keys = keys();
        // job-1 computed points 0 and 1; job-2 later reused point 0 only.
        store.insert(keys[0].clone(), CachedPoint::Skipped("a".into()), "job-1");
        store.insert(keys[1].clone(), CachedPoint::Skipped("b".into()), "job-1");
        assert!(store.hit(&keys[0], "job-2").is_some());

        store.evict_job("job-1");
        assert!(
            store.hit(&keys[0], "job-3").is_some(),
            "co-owned point survives"
        );
        assert!(
            store.hit(&keys[1], "job-3").is_none(),
            "exclusive point dropped"
        );

        store.evict_job("job-2");
        store.evict_job("job-3");
        assert!(store.is_empty(), "last owner gone, point gone");
    }
}
