//! The `bitmod-cli serve` wire protocol: one JSON object per line, in both
//! directions, identical over stdin/stdout and TCP.
//!
//! Every request carries a `cmd` field; every response carries `ok` and, on
//! failure, `error`.  A sweep submission spells its grid exactly like the
//! `bitmod-cli sweep` flags do (model names, dtype names, `g128`-style
//! granularities), so a request can be written by hand:
//!
//! ```json
//! {"cmd": "submit", "models": "phi-2", "bits": [3, 4], "proxy": "tiny"}
//! {"cmd": "submit", "models": "llama2-7b", "bits": "3,4", "method": "awq,omniquant"}
//! {"cmd": "status", "job": "job-1"}
//! {"cmd": "result", "job": "job-1"}
//! {"cmd": "watch", "job": "job-1"}
//! {"cmd": "list"}
//! {"cmd": "ping"}
//! {"cmd": "shutdown"}
//! ```
//!
//! Remote executors (`bitmod-cli worker --attach`) speak four more verbs —
//! `attach`, `lease`, `heartbeat`, and `shard_result` — over the same
//! line protocol, and `watch` is the one *streaming* verb: the daemon holds
//! the connection and pushes `event` lines as shards land.  A `lease`
//! response's `work.indices` array names the exact grid indices the unit
//! computes (the coordinator's point-level result cache may have covered
//! the rest), `status`/`list` views carry `points_total`/`points_cached`
//! plus the job's `algo_hits`/`algo_misses` (algorithm sides reused vs
//! computed fresh across its landed shards), and `ping` stats include the
//! point cache's `points_cached`, `point_hits`, and `point_misses`
//! counters, the algorithm-group cache's `algo_cached`, `algo_hits`, and
//! `algo_misses` counters, plus the live dispatch gauges `queue_depth`
//! (work units awaiting an executor) and `in_flight_shards` (work units
//! currently leased) that `bitmod-cli loadgen` samples.
//!
//! See `docs/SERVING.md` for the full protocol reference with copy-pasteable
//! examples.

use bitmod::llm::proxy::ProxyConfig;
use bitmod::shard::ShardReport;
use bitmod::sweep::{GridSpec, SweepConfig};
use serde::Value;

/// A parsed protocol request.
#[derive(Debug, Clone)]
pub enum Request {
    /// Submit a sweep for execution.
    Submit(Box<SweepConfig>),
    /// Query one job's lifecycle state.
    Status {
        /// The job id to query.
        job: String,
    },
    /// Fetch one finished job's full report.
    Result {
        /// The job id to fetch.
        job: String,
    },
    /// Hold the connection and stream progress events until the job is
    /// terminal (the push alternative to polling `status`).
    Watch {
        /// The job id to watch.
        job: String,
    },
    /// Snapshot every job.
    List,
    /// Liveness check; the response carries coordinator counters.
    Ping,
    /// Ask the daemon to finish running jobs and exit.
    Shutdown,
    /// Register a remote executor.
    Attach {
        /// Self-reported executor name.
        name: String,
    },
    /// Ask for a work unit (remote executors poll this).
    Lease {
        /// The executor id assigned by `attach`.
        executor: String,
    },
    /// Extend a running shard's lease.
    Heartbeat {
        /// The executor id.
        executor: String,
        /// The lease being extended.
        lease: u64,
    },
    /// Return a completed (or failed) shard.
    ShardResult {
        /// The executor id.
        executor: String,
        /// The lease being completed.
        lease: u64,
        /// The shard report, or the failure reason.
        outcome: Result<Box<ShardReport>, String>,
    },
}

impl Request {
    /// Parses one request line.
    pub fn parse(line: &str) -> Result<Request, String> {
        let value =
            serde_json::parse_value(line.trim()).map_err(|e| format!("invalid JSON: {e}"))?;
        let map = value
            .as_map()
            .ok_or("request must be a JSON object".to_string())?;
        let cmd = get_str(map, "cmd").ok_or("missing `cmd` field".to_string())?;
        match cmd {
            "submit" => Ok(Request::Submit(Box::new(sweep_from_map(map)?))),
            "status" => Ok(Request::Status {
                job: required_job(map)?,
            }),
            "result" => Ok(Request::Result {
                job: required_job(map)?,
            }),
            "watch" => Ok(Request::Watch {
                job: required_job(map)?,
            }),
            "list" => Ok(Request::List),
            "ping" => Ok(Request::Ping),
            "shutdown" => Ok(Request::Shutdown),
            "attach" => Ok(Request::Attach {
                name: get_str(map, "name").unwrap_or("worker").to_string(),
            }),
            "lease" => Ok(Request::Lease {
                executor: required_str(map, "executor")?,
            }),
            "heartbeat" => Ok(Request::Heartbeat {
                executor: required_str(map, "executor")?,
                lease: required_lease(map)?,
            }),
            "shard_result" => {
                let executor = required_str(map, "executor")?;
                let lease = required_lease(map)?;
                let outcome = match (get(map, "report"), get_str(map, "error")) {
                    (Some(report), _) => Ok(Box::new(
                        serde_json::from_value::<ShardReport>(report)
                            .map_err(|e| format!("bad shard report: {e}"))?,
                    )),
                    (None, Some(error)) => Err(error.to_string()),
                    (None, None) => {
                        return Err("shard_result requires `report` or `error`".to_string())
                    }
                };
                Ok(Request::ShardResult {
                    executor,
                    lease,
                    outcome,
                })
            }
            other => Err(format!(
                "unknown cmd `{other}` (expected submit, status, result, watch, list, ping, \
                 shutdown, attach, lease, heartbeat, or shard_result)"
            )),
        }
    }
}

fn required_str(map: &[(String, Value)], key: &str) -> Result<String, String> {
    get_str(map, key)
        .map(str::to_string)
        .ok_or_else(|| format!("missing `{key}` field"))
}

fn required_lease(map: &[(String, Value)]) -> Result<u64, String> {
    get(map, "lease")
        .and_then(Value::as_u64)
        .ok_or_else(|| "missing or non-integer `lease` field".to_string())
}

fn required_job(map: &[(String, Value)]) -> Result<String, String> {
    get_str(map, "job")
        .map(str::to_string)
        .ok_or_else(|| "missing `job` field".to_string())
}

fn get<'a>(map: &'a [(String, Value)], key: &str) -> Option<&'a Value> {
    map.iter().find(|(k, _)| k == key).map(|(_, v)| v)
}

fn get_str<'a>(map: &'a [(String, Value)], key: &str) -> Option<&'a str> {
    get(map, key).and_then(Value::as_str)
}

/// Accepts either a comma-separated string (`"3,4"`, `"phi-2,yi-6b"`) or a
/// JSON array of strings/numbers — both spellings appear in the wild.
fn string_items(v: &Value, key: &str) -> Result<Vec<String>, String> {
    match v {
        Value::Str(s) => Ok(s
            .split(',')
            .map(str::trim)
            .filter(|s| !s.is_empty())
            .map(str::to_string)
            .collect()),
        Value::Seq(items) => items
            .iter()
            .map(|item| match item {
                Value::Str(s) => Ok(s.clone()),
                Value::I64(n) => Ok(n.to_string()),
                Value::U64(n) => Ok(n.to_string()),
                _ => Err(format!("`{key}` items must be strings or integers")),
            })
            .collect(),
        _ => Err(format!("`{key}` must be a string or an array")),
    }
}

/// Builds a [`SweepConfig`] from a submit request's fields.  All grid
/// validation lives in [`GridSpec::build`], which `bitmod-cli` shares, so
/// wire and CLI spellings cannot drift apart.
fn sweep_from_map(map: &[(String, Value)]) -> Result<SweepConfig, String> {
    let models_value = get(map, "models").ok_or("submit requires `models`".to_string())?;
    let bits_value = get(map, "bits").ok_or("submit requires `bits`".to_string())?;
    let seed = match get(map, "seed") {
        None => None,
        Some(v) => Some(
            v.as_u64()
                .ok_or_else(|| "`seed` must be an unsigned integer".to_string())?,
        ),
    };
    let spec = GridSpec {
        models: string_items(models_value, "models")?,
        bits: string_items(bits_value, "bits")?,
        dtypes: get(map, "dtypes")
            .map(|v| string_items(v, "dtypes"))
            .transpose()?,
        granularities: get(map, "granularities")
            .map(|v| string_items(v, "granularities"))
            .transpose()?,
        methods: get(map, "method")
            .map(|v| string_items(v, "method"))
            .transpose()?,
        tasks: get(map, "task")
            .map(|v| string_items(v, "task"))
            .transpose()?,
        accels: get(map, "accel")
            .map(|v| string_items(v, "accel"))
            .transpose()?,
        scale_dtypes: get(map, "scale_dtype")
            .map(|v| string_items(v, "scale_dtype"))
            .transpose()?,
        calib_sizes: get(map, "calib_size")
            .map(|v| string_items(v, "calib_size"))
            .transpose()?,
        proxy: get_str(map, "proxy").map(str::to_string),
        seed,
    };
    spec.build()
}

/// Builds the submit request line for a configuration — the inverse of the
/// parsing above, used by `bitmod-cli submit`.
///
/// Only grids expressible through the CLI flags can be spelled on the wire:
/// the proxy must be `standard` or `tiny` (the protocol names CLI
/// spellings, not arbitrary structs).  Every axis — including the method,
/// task, accelerator, scale-dtype and calib-size axes — has a CLI spelling,
/// so any axis combination round-trips.
pub fn submit_line(cfg: &SweepConfig) -> Result<String, String> {
    let proxy = if cfg.proxy == ProxyConfig::standard() {
        "standard"
    } else if cfg.proxy == ProxyConfig::tiny() {
        "tiny"
    } else {
        return Err("only the standard/tiny proxy sizes can be submitted over the wire".into());
    };
    let join = |items: Vec<String>| items.join(",");
    let fields = vec![
        ("cmd".to_string(), Value::Str("submit".to_string())),
        (
            "models".to_string(),
            Value::Str(join(
                cfg.models.iter().map(|m| m.name().to_string()).collect(),
            )),
        ),
        (
            "bits".to_string(),
            Value::Str(join(cfg.bits.iter().map(|b| b.to_string()).collect())),
        ),
        (
            "dtypes".to_string(),
            Value::Str(join(
                cfg.dtypes.iter().map(|d| d.name().to_string()).collect(),
            )),
        ),
        (
            "granularities".to_string(),
            Value::Str(join(
                cfg.granularities
                    .iter()
                    .map(bitmod::sweep::granularity_label)
                    .collect(),
            )),
        ),
        (
            "method".to_string(),
            Value::Str(join(
                cfg.methods.iter().map(|m| m.name().to_string()).collect(),
            )),
        ),
        (
            "task".to_string(),
            Value::Str(join(
                cfg.tasks.iter().map(bitmod::sweep::task_label).collect(),
            )),
        ),
        (
            "accel".to_string(),
            Value::Str(join(
                cfg.accelerators
                    .iter()
                    .map(|a| bitmod::sweep::accelerator_label(a).to_string())
                    .collect(),
            )),
        ),
        (
            "scale_dtype".to_string(),
            Value::Str(join(
                cfg.scale_dtypes
                    .iter()
                    .map(bitmod::sweep::scale_dtype_label)
                    .collect(),
            )),
        ),
        (
            "calib_size".to_string(),
            Value::Str(join(
                cfg.calib_sizes.iter().map(|c| c.to_string()).collect(),
            )),
        ),
        ("proxy".to_string(), Value::Str(proxy.to_string())),
        ("seed".to_string(), Value::U64(cfg.seed)),
    ];
    Ok(serde_json::to_string(&Value::Map(fields)).expect("requests always serialize"))
}

/// Builds one response line (no trailing newline).
pub fn response_line(fields: Vec<(&str, Value)>) -> String {
    let map = Value::Map(
        fields
            .into_iter()
            .map(|(k, v)| (k.to_string(), v))
            .collect(),
    );
    serde_json::to_string(&map).expect("response values always serialize")
}

/// The standard error response for a failed request.
pub fn error_line(message: &str) -> String {
    response_line(vec![
        ("ok", Value::Bool(false)),
        ("error", Value::Str(message.to_string())),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;
    use bitmod::sweep::SweepDtype;
    use bitmod_llm::config::LlmModel;

    #[test]
    fn parses_every_command() {
        assert!(matches!(
            Request::parse(r#"{"cmd":"status","job":"job-1"}"#),
            Ok(Request::Status { job }) if job == "job-1"
        ));
        assert!(matches!(
            Request::parse(r#"{"cmd":"result","job":"job-2"}"#),
            Ok(Request::Result { job }) if job == "job-2"
        ));
        assert!(matches!(
            Request::parse(r#"{"cmd":"watch","job":"job-3"}"#),
            Ok(Request::Watch { job }) if job == "job-3"
        ));
        assert!(matches!(
            Request::parse(r#"{"cmd":"list"}"#),
            Ok(Request::List)
        ));
        assert!(matches!(
            Request::parse(r#"{"cmd":"ping"}"#),
            Ok(Request::Ping)
        ));
        assert!(matches!(
            Request::parse(r#"{"cmd":"shutdown"}"#),
            Ok(Request::Shutdown)
        ));
    }

    #[test]
    fn parses_the_executor_verbs() {
        assert!(matches!(
            Request::parse(r#"{"cmd":"attach","name":"w1"}"#),
            Ok(Request::Attach { name }) if name == "w1"
        ));
        // `name` is optional on attach.
        assert!(matches!(
            Request::parse(r#"{"cmd":"attach"}"#),
            Ok(Request::Attach { name }) if name == "worker"
        ));
        assert!(matches!(
            Request::parse(r#"{"cmd":"lease","executor":"exec-1"}"#),
            Ok(Request::Lease { executor }) if executor == "exec-1"
        ));
        assert!(matches!(
            Request::parse(r#"{"cmd":"heartbeat","executor":"exec-1","lease":7}"#),
            Ok(Request::Heartbeat { executor, lease: 7 }) if executor == "exec-1"
        ));
        // shard_result carries either a full report…
        let report = bitmod::shard::run_shard(
            &bitmod::sweep::SweepConfig::new(vec![LlmModel::Phi2B], vec![4])
                .with_proxy(bitmod::llm::proxy::ProxyConfig::tiny()),
            bitmod::shard::ShardSpec::new(0, 2).unwrap(),
        );
        let line = format!(
            r#"{{"cmd":"shard_result","executor":"exec-1","lease":3,"report":{}}}"#,
            serde_json::to_string(&report).unwrap()
        );
        let Ok(Request::ShardResult {
            lease: 3,
            outcome: Ok(back),
            ..
        }) = Request::parse(&line)
        else {
            panic!("shard_result with a report must parse");
        };
        assert_eq!(back.records.len(), report.records.len());
        // …or an error.
        assert!(matches!(
            Request::parse(
                r#"{"cmd":"shard_result","executor":"exec-1","lease":4,"error":"boom"}"#
            ),
            Ok(Request::ShardResult { outcome: Err(e), .. }) if e == "boom"
        ));
    }

    #[test]
    fn submit_accepts_cli_spellings_and_json_arrays() {
        let from_strings = Request::parse(
            r#"{"cmd":"submit","models":"phi-2,opt-1.3b","bits":"3,4","dtypes":"bitmod,int-asym","granularities":"g128","proxy":"tiny","seed":7}"#,
        )
        .unwrap();
        let from_arrays = Request::parse(
            r#"{"cmd":"submit","models":["phi-2","opt-1.3b"],"bits":[3,4],"dtypes":["bitmod","int-asym"],"granularities":["128"],"proxy":"tiny","seed":7}"#,
        )
        .unwrap();
        let (Request::Submit(a), Request::Submit(b)) = (from_strings, from_arrays) else {
            panic!("both must parse as submits");
        };
        assert_eq!(a.cache_key(), b.cache_key());
        assert_eq!(a.models, vec![LlmModel::Phi2B, LlmModel::Opt1_3B]);
        assert_eq!(a.bits, vec![3, 4]);
        assert_eq!(a.seed, 7);
    }

    #[test]
    fn submit_defaults_match_cli_sweep_defaults() {
        let Ok(Request::Submit(cfg)) =
            Request::parse(r#"{"cmd":"submit","models":"phi-2","bits":"4"}"#)
        else {
            panic!("must parse");
        };
        let default = bitmod::sweep::SweepConfig::new(vec![LlmModel::Phi2B], vec![4]);
        assert_eq!(cfg.cache_key(), default.cache_key());
    }

    #[test]
    fn rejects_malformed_requests_with_actionable_errors() {
        for (line, needle) in [
            ("not json", "invalid JSON"),
            ("[1,2]", "must be a JSON object"),
            (r#"{"x":1}"#, "missing `cmd`"),
            (r#"{"cmd":"nope"}"#, "unknown cmd"),
            (r#"{"cmd":"status"}"#, "missing `job`"),
            (r#"{"cmd":"watch"}"#, "missing `job`"),
            (r#"{"cmd":"lease"}"#, "missing `executor`"),
            (r#"{"cmd":"heartbeat","executor":"e"}"#, "`lease`"),
            (
                r#"{"cmd":"shard_result","executor":"e","lease":1}"#,
                "requires `report` or `error`",
            ),
            (r#"{"cmd":"submit","bits":"4"}"#, "requires `models`"),
            (r#"{"cmd":"submit","models":"phi-2"}"#, "requires `bits`"),
            (
                r#"{"cmd":"submit","models":"gpt-9","bits":"4"}"#,
                "unknown model",
            ),
            (
                r#"{"cmd":"submit","models":"phi-2","bits":"99"}"#,
                "invalid bit width",
            ),
            (
                r#"{"cmd":"submit","models":"phi-2","bits":"4","dtypes":"float8"}"#,
                "unknown dtype",
            ),
            (
                r#"{"cmd":"submit","models":"phi-2","bits":"4","seed":"abc"}"#,
                "`seed` must be",
            ),
        ] {
            let err = Request::parse(line).expect_err(line);
            assert!(
                err.contains(needle),
                "`{line}` → `{err}` (wanted `{needle}`)"
            );
        }
    }

    #[test]
    fn submit_line_roundtrips_through_the_parser() {
        use bitmod::llm::memory::TaskShape;
        use bitmod::llm::proxy::ProxyConfig;
        use bitmod::prelude::{AcceleratorKind, CompositionMethod, ScaleDtype};
        use bitmod::quant::Granularity;
        let cfg =
            bitmod::sweep::SweepConfig::new(vec![LlmModel::Llama2_7B, LlmModel::Phi2B], vec![3, 4])
                .with_dtypes(vec![SweepDtype::BitMod, SweepDtype::Mx])
                .with_granularities(vec![Granularity::PerChannel, Granularity::PerGroup(64)])
                .with_methods(vec![CompositionMethod::Awq, CompositionMethod::SmoothQuant])
                .with_tasks(vec![
                    TaskShape::DISCRIMINATIVE,
                    TaskShape {
                        input_tokens: 100,
                        output_tokens: 7,
                    },
                ])
                .with_accelerators(vec![AcceleratorKind::Ant, AcceleratorKind::BaselineFp16])
                .with_scale_dtypes(vec![ScaleDtype::Fp16, ScaleDtype::Int(6)])
                .with_calib_sizes(vec![16, 48])
                .with_proxy(ProxyConfig::tiny())
                .with_seed(123);
        let line = submit_line(&cfg).unwrap();
        let Ok(Request::Submit(back)) = Request::parse(&line) else {
            panic!("generated line must parse as a submit");
        };
        assert_eq!(back.cache_key(), cfg.cache_key());
        assert_eq!(back.methods, cfg.methods);
        assert_eq!(back.tasks, cfg.tasks);
        assert_eq!(back.accelerators, cfg.accelerators);
        assert_eq!(back.scale_dtypes, cfg.scale_dtypes);
        assert_eq!(back.calib_sizes, cfg.calib_sizes);
        // Non-CLI configurations are rejected rather than mis-spelled.
        let mut custom = cfg.clone();
        custom.proxy.hidden *= 2;
        let err = submit_line(&custom).unwrap_err();
        assert!(err.contains("proxy"), "{err}");
    }

    #[test]
    fn submit_rejects_bad_new_axis_spellings() {
        for (line, needle) in [
            (
                r#"{"cmd":"submit","models":"phi-2","bits":"4","method":"dpo"}"#,
                "unknown method",
            ),
            (
                r#"{"cmd":"submit","models":"phi-2","bits":"4","task":"0x9"}"#,
                "invalid task",
            ),
            (
                r#"{"cmd":"submit","models":"phi-2","bits":"4","accel":"tpu"}"#,
                "unknown accelerator",
            ),
            (
                r#"{"cmd":"submit","models":"phi-2","bits":"4","scale_dtype":"bf16"}"#,
                "invalid scale dtype",
            ),
            (
                r#"{"cmd":"submit","models":"phi-2","bits":"4","calib_size":"99"}"#,
                "invalid calib size",
            ),
            (
                r#"{"cmd":"submit","models":"phi-2","bits":"4","calib_size":"0"}"#,
                "invalid calib size",
            ),
            (
                r#"{"cmd":"submit","models":"phi-2","bits":"4,4"}"#,
                "duplicate bit width",
            ),
        ] {
            let err = Request::parse(line).expect_err(line);
            assert!(err.contains(needle), "`{line}` → `{err}`");
        }
    }

    #[test]
    fn response_lines_are_single_line_json() {
        let line = response_line(vec![
            ("ok", Value::Bool(true)),
            ("job", Value::Str("job-1".to_string())),
        ]);
        assert_eq!(line, r#"{"ok":true,"job":"job-1"}"#);
        assert!(error_line("boom").contains(r#""ok":false"#));
        assert!(!line.contains('\n'));
    }
}
