//! The serve loops: line-JSON request/response over stdin/stdout or a TCP
//! listener, backed by a [`Coordinator`].
//!
//! Every verb except `watch` is strict request/response; `watch` holds the
//! connection and streams `event` lines (shard progress, then the final
//! result) as they land — see [`stream_watch`].

use crate::coordinator::Coordinator;
use crate::job::{JobStatus, JobView};
use crate::proto::{error_line, response_line, Request};
use serde::{Serialize, Value};
use std::io::{BufRead, BufReader, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::Arc;
use std::time::Duration;

/// Handles one *non-streaming* request line; returns the response line plus
/// whether the request asked the daemon to shut down.  `watch` is answered
/// with an error pointing at the streaming entry point ([`respond`] routes
/// it properly; this function exists for strict one-in/one-out callers and
/// tests).
pub fn handle_line(coordinator: &Coordinator, line: &str) -> (String, bool) {
    match Request::parse(line) {
        Err(e) => (error_line(&e), false),
        Ok(Request::Watch { .. }) => (
            error_line("watch is a streaming request; use a streaming-capable connection"),
            false,
        ),
        Ok(request) => handle_request(coordinator, request),
    }
}

fn handle_request(coordinator: &Coordinator, request: Request) -> (String, bool) {
    match request {
        Request::Watch { .. } => unreachable!("watch is routed by respond()"),
        Request::Submit(config) => {
            let outcome = coordinator.submit(&config);
            let status = coordinator
                .status(&outcome.job_id)
                .map(|v| v.status.name())
                .unwrap_or("queued");
            (
                response_line(vec![
                    ("ok", Value::Bool(true)),
                    ("job", Value::Str(outcome.job_id)),
                    ("deduped", Value::Bool(outcome.deduped)),
                    ("status", Value::Str(status.to_string())),
                ]),
                false,
            )
        }
        Request::Status { job } => match coordinator.status(&job) {
            None => (error_line(&format!("unknown job `{job}`")), false),
            Some(view) => (
                response_line(vec![("ok", Value::Bool(true)), ("job", view_value(&view))]),
                false,
            ),
        },
        Request::Result { job } => match coordinator.result(&job) {
            None => (error_line(&format!("unknown job `{job}`")), false),
            Some(Err(e)) => (error_line(&e), false),
            Some(Ok(report)) => (
                response_line(vec![
                    ("ok", Value::Bool(true)),
                    ("job", Value::Str(job)),
                    ("report", report.to_value()),
                ]),
                false,
            ),
        },
        Request::List => {
            let jobs: Vec<Value> = coordinator.list().iter().map(view_value).collect();
            (
                response_line(vec![("ok", Value::Bool(true)), ("jobs", Value::Seq(jobs))]),
                false,
            )
        }
        Request::Ping => (
            response_line(vec![
                ("ok", Value::Bool(true)),
                ("stats", coordinator.stats().to_value()),
            ]),
            false,
        ),
        Request::Shutdown => {
            // Flag the coordinator here, not just the calling loop: the TCP
            // accept loop watches this flag, and any connection may order
            // shutdown.
            coordinator.request_shutdown();
            (
                response_line(vec![
                    ("ok", Value::Bool(true)),
                    ("shutting_down", Value::Bool(true)),
                ]),
                true,
            )
        }
        Request::Attach { name } => {
            let executor = coordinator.register_executor(&name, true);
            (
                response_line(vec![
                    ("ok", Value::Bool(true)),
                    ("executor", Value::Str(executor)),
                    (
                        "lease_ms",
                        Value::U64(coordinator.lease_timeout().as_millis() as u64),
                    ),
                ]),
                false,
            )
        }
        Request::Lease { executor } => {
            let (work, shutting_down) = coordinator.try_lease(&executor);
            let work_value = match work {
                None => Value::Null,
                Some(w) => Value::Map(vec![
                    ("lease".to_string(), Value::U64(w.lease)),
                    ("job".to_string(), Value::Str(w.job)),
                    ("shard".to_string(), Value::Str(w.shard.label())),
                    ("config".to_string(), w.config.to_value()),
                    // The exact grid indices this unit computes — its
                    // group-aware share of the job's uncached remainder.
                    (
                        "indices".to_string(),
                        Value::Seq(w.indices.iter().map(|&i| Value::U64(i as u64)).collect()),
                    ),
                ]),
            };
            (
                response_line(vec![
                    ("ok", Value::Bool(true)),
                    ("work", work_value),
                    ("shutting_down", Value::Bool(shutting_down)),
                ]),
                false,
            )
        }
        Request::Heartbeat { executor, lease } => match coordinator.heartbeat(&executor, lease) {
            Err(e) => (error_line(&e), false),
            Ok(timeout) => (
                response_line(vec![
                    ("ok", Value::Bool(true)),
                    ("lease_ms", Value::U64(timeout.as_millis() as u64)),
                ]),
                false,
            ),
        },
        Request::ShardResult {
            executor,
            lease,
            outcome,
        } => {
            let landed = match outcome {
                Ok(report) => coordinator.complete_shard(&executor, lease, *report),
                Err(error) => coordinator.fail_shard(&executor, lease, error),
            };
            match landed {
                Err(e) => (error_line(&e), false),
                Ok(landing) => {
                    let mut fields = vec![
                        ("ok", Value::Bool(true)),
                        ("job", Value::Str(landing.job)),
                        ("status", Value::Str(landing.status.name().to_string())),
                        ("shards_done", Value::U64(landing.progress.0 as u64)),
                        ("shards_total", Value::U64(landing.progress.1 as u64)),
                    ];
                    // What the shard itself contributed, for the worker's logs.
                    if let Some(p) = landing.shard_progress {
                        fields.push(("records", Value::U64(p.records as u64)));
                        fields.push(("skipped", Value::U64(p.skipped as u64)));
                        fields.push(("wall_seconds", Value::F64(p.wall_seconds)));
                    }
                    (response_line(fields), false)
                }
            }
        }
    }
}

/// Handles one request line against `out`, streaming when the verb streams
/// (`watch`); returns whether the daemon was asked to shut down.
pub fn respond(
    coordinator: &Coordinator,
    line: &str,
    out: &mut impl Write,
) -> std::io::Result<bool> {
    match Request::parse(line) {
        Ok(Request::Watch { job }) => {
            stream_watch(coordinator, &job, out)?;
            Ok(false)
        }
        Ok(request) => {
            let (response, shutdown) = handle_request(coordinator, request);
            writeln!(out, "{response}")?;
            out.flush()?;
            Ok(shutdown)
        }
        Err(e) => {
            writeln!(out, "{}", error_line(&e))?;
            out.flush()?;
            Ok(false)
        }
    }
}

/// Streams a job's life to `out`: one `progress` event per observable change
/// (status transitions, shards landing), then a final `done` event carrying
/// the full report (or a `failed` event carrying the error).  Every line is
/// `ok: true` with an `event` discriminator, so streaming clients switch on
/// `event` alone.
pub fn stream_watch(
    coordinator: &Coordinator,
    job: &str,
    out: &mut impl Write,
) -> std::io::Result<()> {
    let mut last_emitted: Option<(JobStatus, usize)> = None;
    let mut epoch = coordinator.epoch();
    loop {
        // View and report are snapshotted under one lock: with a capped
        // result cache the job could otherwise be evicted between a status
        // poll and the result fetch, mislabeling a completed job.
        let Some((view, report)) = coordinator.snapshot(job) else {
            writeln!(out, "{}", error_line(&format!("unknown job `{job}`")))?;
            out.flush()?;
            return Ok(());
        };
        let key = (view.status, view.shards_done);
        if last_emitted != Some(key) {
            last_emitted = Some(key);
            writeln!(
                out,
                "{}",
                response_line(vec![
                    ("ok", Value::Bool(true)),
                    ("event", Value::Str("progress".to_string())),
                    ("job", Value::Str(view.id.clone())),
                    ("status", Value::Str(view.status.name().to_string())),
                    ("shards_done", Value::U64(view.shards_done as u64)),
                    ("shards_total", Value::U64(view.shards_total as u64)),
                ])
            )?;
            out.flush()?;
        }
        match view.status {
            JobStatus::Done => {
                let report = report.map(|r| r.to_value()).unwrap_or(Value::Null);
                writeln!(
                    out,
                    "{}",
                    response_line(vec![
                        ("ok", Value::Bool(true)),
                        ("event", Value::Str("done".to_string())),
                        ("job", Value::Str(view.id)),
                        ("report", report),
                    ])
                )?;
                out.flush()?;
                return Ok(());
            }
            JobStatus::Failed => {
                writeln!(
                    out,
                    "{}",
                    response_line(vec![
                        ("ok", Value::Bool(true)),
                        ("event", Value::Str("failed".to_string())),
                        ("job", Value::Str(view.id)),
                        (
                            "error",
                            Value::Str(view.error.unwrap_or_else(|| "job failed".to_string())),
                        ),
                    ])
                )?;
                out.flush()?;
                return Ok(());
            }
            JobStatus::Queued | JobStatus::Running => {
                // A shutting-down coordinator with no executor left can
                // never finish this job; trigger the stranded-work check so
                // the job fails (emitting the final event) instead of this
                // stream pinning the daemon's exit forever.
                coordinator.abandon_stranded_work();
                if coordinator.is_aborted() {
                    writeln!(
                        out,
                        "{}",
                        response_line(vec![
                            ("ok", Value::Bool(true)),
                            ("event", Value::Str("interrupted".to_string())),
                            ("job", Value::Str(view.id)),
                            (
                                "error",
                                Value::Str("daemon halted before the job finished".to_string()),
                            ),
                        ])
                    )?;
                    out.flush()?;
                    return Ok(());
                }
            }
        }
        epoch = coordinator.wait_progress(epoch, Duration::from_millis(250));
    }
}

fn view_value(view: &JobView) -> Value {
    let mut fields = vec![
        ("id".to_string(), Value::Str(view.id.clone())),
        (
            "status".to_string(),
            Value::Str(view.status.name().to_string()),
        ),
        (
            "submissions".to_string(),
            Value::U64(view.submissions as u64),
        ),
        (
            "shards_done".to_string(),
            Value::U64(view.shards_done as u64),
        ),
        (
            "shards_total".to_string(),
            Value::U64(view.shards_total as u64),
        ),
        (
            "points_total".to_string(),
            Value::U64(view.points_total as u64),
        ),
        (
            "points_cached".to_string(),
            Value::U64(view.points_cached as u64),
        ),
        ("algo_hits".to_string(), Value::U64(view.algo_hits as u64)),
        (
            "algo_misses".to_string(),
            Value::U64(view.algo_misses as u64),
        ),
    ];
    if let Some(n) = view.records {
        fields.push(("records".to_string(), Value::U64(n as u64)));
    }
    if let Some(n) = view.skipped {
        fields.push(("skipped".to_string(), Value::U64(n as u64)));
    }
    if let Some(w) = view.wall_seconds {
        fields.push(("wall_seconds".to_string(), Value::F64(w)));
    }
    if let Some(e) = &view.error {
        fields.push(("error".to_string(), Value::Str(e.clone())));
    }
    Value::Map(fields)
}

/// Serves requests from `input` to `output` until EOF or a `shutdown`
/// request, then waits for in-flight jobs to finish.  `bitmod-cli serve`
/// (without `--listen`) wires this to stdin/stdout.
pub fn serve_lines(
    coordinator: &Coordinator,
    input: impl BufRead,
    mut output: impl Write,
) -> std::io::Result<()> {
    for line in input.lines() {
        let line = line?;
        if line.trim().is_empty() {
            continue;
        }
        if respond(coordinator, &line, &mut output)? {
            break;
        }
    }
    // Finish whatever was accepted (EOF is the stdio client's "I'm done
    // submitting", not "abandon my jobs").
    coordinator.drain();
    Ok(())
}

/// Binds `addr` and serves each connection with the line protocol until a
/// `shutdown` request arrives (from any connection).  Returns the bound
/// listener so callers can report the actual port before entering the loop —
/// pass it to [`serve_listener`].
pub fn bind(addr: &str) -> std::io::Result<TcpListener> {
    TcpListener::bind(addr)
}

/// Accept loop for a bound listener: one thread per connection, all sharing
/// `coordinator`.  Returns once shutdown is requested and every connection
/// thread has exited; in-flight jobs are drained before returning.
pub fn serve_listener(coordinator: Arc<Coordinator>, listener: TcpListener) -> std::io::Result<()> {
    listener.set_nonblocking(true)?;
    let mut connections = Vec::new();
    while !coordinator.is_shutting_down() {
        match listener.accept() {
            Ok((stream, _peer)) => {
                let coordinator = Arc::clone(&coordinator);
                connections.push(std::thread::spawn(move || {
                    let _ = serve_connection(&coordinator, stream);
                }));
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                // Long-lived daemons see many connections: drop the handles
                // of finished ones instead of accreting them until exit.
                connections.retain(|c| !c.is_finished());
                std::thread::sleep(Duration::from_millis(20));
            }
            Err(e) => return Err(e),
        }
    }
    for c in connections {
        let _ = c.join();
    }
    coordinator.drain();
    Ok(())
}

/// Serves one TCP connection until its peer disconnects, requests shutdown,
/// or another connection shuts the daemon down.
///
/// Reads run with a short timeout so an *idle* connection notices
/// coordinator-wide shutdown instead of blocking the daemon's exit forever.
fn serve_connection(coordinator: &Coordinator, stream: TcpStream) -> std::io::Result<()> {
    stream.set_nonblocking(false)?;
    stream.set_read_timeout(Some(Duration::from_millis(200)))?;
    let mut reader = BufReader::new(stream.try_clone()?);
    let mut writer = stream;
    // One persistent buffer: a timeout may interrupt mid-line, and the
    // partial bytes already appended must survive until the line completes.
    let mut line = String::new();
    loop {
        match reader.read_line(&mut line) {
            Ok(0) => return Ok(()), // EOF — peer disconnected
            Ok(_) => {
                if !line.trim().is_empty() && respond(coordinator, line.trim_end(), &mut writer)? {
                    return Ok(());
                }
                line.clear();
            }
            Err(e)
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                ) =>
            {
                if coordinator.is_shutting_down() {
                    return Ok(());
                }
            }
            Err(e) => return Err(e),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::coordinator::{CoordinatorConfig, CoordinatorHandle};
    use std::io::Cursor;

    fn coordinator() -> CoordinatorHandle {
        Coordinator::start(CoordinatorConfig {
            workers: 1,
            ..CoordinatorConfig::default()
        })
    }

    #[test]
    fn stdio_session_submits_polls_and_fetches() {
        let handle = coordinator();
        let script = concat!(
            r#"{"cmd":"ping"}"#,
            "\n",
            r#"{"cmd":"submit","models":"phi-2","bits":"4","proxy":"tiny"}"#,
            "\n",
        );
        let mut out = Vec::new();
        serve_lines(handle.coordinator(), Cursor::new(script), &mut out).unwrap();
        let out = String::from_utf8(out).unwrap();
        let lines: Vec<&str> = out.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].contains(r#""ok":true"#) && lines[0].contains("stats"));
        // The dispatch gauges loadgen samples must be in every ping (an idle
        // daemon reports both as zero).
        assert!(lines[0].contains(r#""queue_depth":0"#), "{}", lines[0]);
        assert!(lines[0].contains(r#""in_flight_shards":0"#), "{}", lines[0]);
        assert!(lines[1].contains(r#""job":"job-1""#));
        // serve_lines drained on EOF, so the job is done now.
        let (status, _) = handle_line(handle.coordinator(), r#"{"cmd":"status","job":"job-1"}"#);
        assert!(status.contains(r#""status":"done""#), "{status}");
        assert!(status.contains(r#""shards_done":1"#), "{status}");
        let (result, _) = handle_line(handle.coordinator(), r#"{"cmd":"result","job":"job-1"}"#);
        assert!(result.contains(r#""records""#), "result carries the report");
        handle.shutdown();
    }

    #[test]
    fn malformed_lines_get_error_responses_not_disconnects() {
        let handle = coordinator();
        let mut out = Vec::new();
        serve_lines(
            handle.coordinator(),
            Cursor::new("garbage\n\n{\"cmd\":\"list\"}\n"),
            &mut out,
        )
        .unwrap();
        let out = String::from_utf8(out).unwrap();
        let lines: Vec<&str> = out.lines().collect();
        assert_eq!(lines.len(), 2, "blank line skipped, two responses: {out}");
        assert!(lines[0].contains(r#""ok":false"#));
        assert!(lines[1].contains(r#""jobs":[]"#));
        handle.shutdown();
    }

    #[test]
    fn shutdown_line_stops_the_session() {
        let handle = coordinator();
        let script = concat!(r#"{"cmd":"shutdown"}"#, "\n", r#"{"cmd":"ping"}"#, "\n");
        let mut out = Vec::new();
        serve_lines(handle.coordinator(), Cursor::new(script), &mut out).unwrap();
        let out = String::from_utf8(out).unwrap();
        assert_eq!(out.lines().count(), 1, "nothing served after shutdown");
        assert!(out.contains("shutting_down"));
        handle.shutdown();
    }

    #[test]
    fn watch_streams_progress_then_the_final_report() {
        let handle = Coordinator::start(CoordinatorConfig {
            workers: 2,
            shards: 3,
            ..CoordinatorConfig::default()
        });
        let out = handle.coordinator().submit(
            &bitmod::sweep::SweepConfig::new(
                vec![bitmod::llm::config::LlmModel::Phi2B],
                vec![3, 4],
            )
            .with_proxy(bitmod::llm::proxy::ProxyConfig::tiny()),
        );
        let mut stream = Vec::new();
        stream_watch(handle.coordinator(), &out.job_id, &mut stream).unwrap();
        let text = String::from_utf8(stream).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert!(
            lines.len() >= 2,
            "at least one progress + the final: {text}"
        );
        assert!(lines[0].contains(r#""event":"progress""#));
        assert!(lines
            .iter()
            .all(|l| l.contains(r#""ok":true"#) && l.contains(r#""event":"#)));
        let last = lines.last().unwrap();
        assert!(last.contains(r#""event":"done""#), "{last}");
        assert!(
            last.contains(r#""records""#),
            "final event carries the report"
        );
        // Unknown jobs answer with an error line instead of hanging.
        let mut err = Vec::new();
        stream_watch(handle.coordinator(), "job-99", &mut err).unwrap();
        assert!(String::from_utf8(err).unwrap().contains("unknown job"));
        handle.shutdown();
    }

    #[test]
    fn attach_lease_result_round_trip_over_handle_line() {
        // The remote-executor verbs, driven synchronously: a coordinator
        // with no in-process executors hands its single work unit to a
        // "remote" caller, which runs the shard locally and returns it.
        let handle = Coordinator::start(CoordinatorConfig {
            workers: 0,
            ..CoordinatorConfig::default()
        });
        let c = handle.coordinator();
        let (attach, _) = handle_line(c, r#"{"cmd":"attach","name":"test-worker"}"#);
        assert!(attach.contains(r#""executor":"exec-1""#), "{attach}");
        let submit = handle_line(
            c,
            r#"{"cmd":"submit","models":"phi-2","bits":"4","proxy":"tiny"}"#,
        );
        assert!(submit.0.contains(r#""job":"job-1""#));
        let (lease, _) = handle_line(c, r#"{"cmd":"lease","executor":"exec-1"}"#);
        assert!(
            lease.contains(r#""lease":1"#) && lease.contains(r#""shard":"0/1""#),
            "{lease}"
        );
        // Heartbeat works while the lease is held.
        let (beat, _) = handle_line(c, r#"{"cmd":"heartbeat","executor":"exec-1","lease":1}"#);
        assert!(beat.contains("lease_ms"), "{beat}");
        // Run the shard out-of-band and return it.
        let job_config =
            bitmod::sweep::SweepConfig::new(vec![bitmod::llm::config::LlmModel::Phi2B], vec![4])
                .with_proxy(bitmod::llm::proxy::ProxyConfig::tiny())
                .canonicalized();
        let report =
            bitmod::shard::run_shard(&job_config, bitmod::shard::ShardSpec::new(0, 1).unwrap());
        let line = format!(
            r#"{{"cmd":"shard_result","executor":"exec-1","lease":1,"report":{}}}"#,
            serde_json::to_string(&report).unwrap()
        );
        let (landed, _) = handle_line(c, &line);
        assert!(landed.contains(r#""status":"done""#), "{landed}");
        let (result, _) = handle_line(c, r#"{"cmd":"result","job":"job-1"}"#);
        assert!(result.contains(r#""records""#), "{result}");
        // An empty lease queue answers work:null (and no shutdown yet).
        let (idle, _) = handle_line(c, r#"{"cmd":"lease","executor":"exec-1"}"#);
        assert!(idle.contains(r#""work":null"#), "{idle}");
        assert!(idle.contains(r#""shutting_down":false"#), "{idle}");
        handle.shutdown();
    }

    #[test]
    fn idle_connections_do_not_block_shutdown() {
        let handle = coordinator();
        let listener = bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let coordinator_arc = Arc::clone(handle.coordinator());
        let server = std::thread::spawn(move || serve_listener(coordinator_arc, listener));

        // Client A connects and goes silent.
        let idle = TcpStream::connect(addr).unwrap();
        // Client B orders shutdown.
        let mut b = TcpStream::connect(addr).unwrap();
        writeln!(b, r#"{{"cmd":"shutdown"}}"#).unwrap();
        let mut response = String::new();
        BufReader::new(b).read_line(&mut response).unwrap();
        assert!(response.contains("shutting_down"));

        // The daemon must exit despite A's open idle connection.
        let (tx, rx) = std::sync::mpsc::channel();
        std::thread::spawn(move || {
            let _ = tx.send(server.join());
        });
        rx.recv_timeout(Duration::from_secs(10))
            .expect("serve_listener must return while an idle connection is open")
            .unwrap()
            .unwrap();
        drop(idle);
        handle.shutdown();
    }

    #[test]
    fn tcp_round_trip_over_localhost() {
        let handle = coordinator();
        let listener = bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let coordinator_arc = Arc::clone(handle.coordinator());
        let server = std::thread::spawn(move || serve_listener(coordinator_arc, listener));

        let stream = TcpStream::connect(addr).unwrap();
        let mut reader = BufReader::new(stream.try_clone().unwrap());
        let mut writer = stream;
        let mut send = |line: &str| -> String {
            writeln!(writer, "{line}").unwrap();
            let mut response = String::new();
            reader.read_line(&mut response).unwrap();
            response
        };
        let submitted = send(r#"{"cmd":"submit","models":"phi-2","bits":"4","proxy":"tiny"}"#);
        assert!(submitted.contains(r#""job":"job-1""#), "{submitted}");
        // Poll until done (the coordinator is fast at tiny proxy size).
        loop {
            let status = send(r#"{"cmd":"status","job":"job-1"}"#);
            if status.contains(r#""status":"done""#) {
                break;
            }
            std::thread::sleep(Duration::from_millis(20));
        }
        let result = send(r#"{"cmd":"result","job":"job-1"}"#);
        assert!(result.contains(r#""records""#));
        assert!(send(r#"{"cmd":"shutdown"}"#).contains("shutting_down"));
        server.join().unwrap().unwrap();
        handle.shutdown();
    }

    #[test]
    fn watch_streams_over_tcp_while_the_job_runs() {
        let handle = Coordinator::start(CoordinatorConfig {
            workers: 1,
            shards: 2,
            ..CoordinatorConfig::default()
        });
        let listener = bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let coordinator_arc = Arc::clone(handle.coordinator());
        let server = std::thread::spawn(move || serve_listener(coordinator_arc, listener));

        let stream = TcpStream::connect(addr).unwrap();
        let mut reader = BufReader::new(stream.try_clone().unwrap());
        let mut writer = stream;
        writeln!(
            writer,
            r#"{{"cmd":"submit","models":"phi-2","bits":"3,4","proxy":"tiny"}}"#
        )
        .unwrap();
        let mut response = String::new();
        reader.read_line(&mut response).unwrap();
        assert!(response.contains(r#""job":"job-1""#));
        // Watch on the same connection: read until the done event.
        writeln!(writer, r#"{{"cmd":"watch","job":"job-1"}}"#).unwrap();
        let mut saw_progress = false;
        loop {
            let mut line = String::new();
            reader.read_line(&mut line).unwrap();
            if line.contains(r#""event":"progress""#) {
                saw_progress = true;
            }
            if line.contains(r#""event":"done""#) {
                assert!(line.contains(r#""records""#));
                break;
            }
        }
        assert!(saw_progress, "watch pushed at least one progress event");
        // The connection is still usable for request/response afterwards.
        writeln!(writer, r#"{{"cmd":"shutdown"}}"#).unwrap();
        let mut last = String::new();
        reader.read_line(&mut last).unwrap();
        assert!(last.contains("shutting_down"));
        server.join().unwrap().unwrap();
        handle.shutdown();
    }
}
