//! The serve loops: line-JSON request/response over stdin/stdout or a TCP
//! listener, backed by a [`ServeEngine`].

use crate::engine::ServeEngine;
use crate::job::JobView;
use crate::proto::{error_line, response_line, Request};
use serde::{Serialize, Value};
use std::io::{BufRead, BufReader, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::Arc;
use std::time::Duration;

/// Handles one request line; returns the response line plus whether the
/// request asked the daemon to shut down.
pub fn handle_line(engine: &ServeEngine, line: &str) -> (String, bool) {
    match Request::parse(line) {
        Err(e) => (error_line(&e), false),
        Ok(Request::Submit(config)) => {
            let outcome = engine.submit(&config);
            let status = engine
                .status(&outcome.job_id)
                .map(|v| v.status.name())
                .unwrap_or("queued");
            (
                response_line(vec![
                    ("ok", Value::Bool(true)),
                    ("job", Value::Str(outcome.job_id)),
                    ("deduped", Value::Bool(outcome.deduped)),
                    ("status", Value::Str(status.to_string())),
                ]),
                false,
            )
        }
        Ok(Request::Status { job }) => match engine.status(&job) {
            None => (error_line(&format!("unknown job `{job}`")), false),
            Some(view) => (
                response_line(vec![("ok", Value::Bool(true)), ("job", view_value(&view))]),
                false,
            ),
        },
        Ok(Request::Result { job }) => match engine.result(&job) {
            None => (error_line(&format!("unknown job `{job}`")), false),
            Some(Err(e)) => (error_line(&e), false),
            Some(Ok(report)) => (
                response_line(vec![
                    ("ok", Value::Bool(true)),
                    ("job", Value::Str(job)),
                    ("report", report.to_value()),
                ]),
                false,
            ),
        },
        Ok(Request::List) => {
            let jobs: Vec<Value> = engine.list().iter().map(view_value).collect();
            (
                response_line(vec![("ok", Value::Bool(true)), ("jobs", Value::Seq(jobs))]),
                false,
            )
        }
        Ok(Request::Ping) => (
            response_line(vec![
                ("ok", Value::Bool(true)),
                ("stats", engine.stats().to_value()),
            ]),
            false,
        ),
        Ok(Request::Shutdown) => {
            // Flag the engine here, not just the calling loop: the TCP accept
            // loop watches this flag, and any connection may order shutdown.
            engine.request_shutdown();
            (
                response_line(vec![
                    ("ok", Value::Bool(true)),
                    ("shutting_down", Value::Bool(true)),
                ]),
                true,
            )
        }
    }
}

fn view_value(view: &JobView) -> Value {
    let mut fields = vec![
        ("id".to_string(), Value::Str(view.id.clone())),
        (
            "status".to_string(),
            Value::Str(view.status.name().to_string()),
        ),
        (
            "submissions".to_string(),
            Value::U64(view.submissions as u64),
        ),
    ];
    if let Some(n) = view.records {
        fields.push(("records".to_string(), Value::U64(n as u64)));
    }
    if let Some(n) = view.skipped {
        fields.push(("skipped".to_string(), Value::U64(n as u64)));
    }
    if let Some(w) = view.wall_seconds {
        fields.push(("wall_seconds".to_string(), Value::F64(w)));
    }
    if let Some(e) = &view.error {
        fields.push(("error".to_string(), Value::Str(e.clone())));
    }
    Value::Map(fields)
}

/// Serves requests from `input` to `output` until EOF or a `shutdown`
/// request, then waits for in-flight jobs to finish.  `bitmod-cli serve`
/// (without `--listen`) wires this to stdin/stdout.
pub fn serve_lines(
    engine: &ServeEngine,
    input: impl BufRead,
    mut output: impl Write,
) -> std::io::Result<()> {
    for line in input.lines() {
        let line = line?;
        if line.trim().is_empty() {
            continue;
        }
        let (response, shutdown) = handle_line(engine, &line);
        writeln!(output, "{response}")?;
        output.flush()?;
        if shutdown {
            break;
        }
    }
    // Finish whatever was accepted (EOF is the stdio client's "I'm done
    // submitting", not "abandon my jobs").
    engine.drain();
    Ok(())
}

/// Binds `addr` and serves each connection with the line protocol until a
/// `shutdown` request arrives (from any connection).  Returns the bound
/// listener so callers can report the actual port before entering the loop —
/// pass it to [`serve_listener`].
pub fn bind(addr: &str) -> std::io::Result<TcpListener> {
    TcpListener::bind(addr)
}

/// Accept loop for a bound listener: one thread per connection, all sharing
/// `engine`.  Returns once shutdown is requested and every connection thread
/// has exited; in-flight jobs are drained before returning.
pub fn serve_listener(engine: Arc<ServeEngine>, listener: TcpListener) -> std::io::Result<()> {
    listener.set_nonblocking(true)?;
    let mut connections = Vec::new();
    while !engine.is_shutting_down() {
        match listener.accept() {
            Ok((stream, _peer)) => {
                let engine = Arc::clone(&engine);
                connections.push(std::thread::spawn(move || {
                    let _ = serve_connection(&engine, stream);
                }));
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                // Long-lived daemons see many connections: drop the handles
                // of finished ones instead of accreting them until exit.
                connections.retain(|c| !c.is_finished());
                std::thread::sleep(Duration::from_millis(20));
            }
            Err(e) => return Err(e),
        }
    }
    for c in connections {
        let _ = c.join();
    }
    engine.drain();
    Ok(())
}

/// Serves one TCP connection until its peer disconnects, requests shutdown,
/// or another connection shuts the daemon down.
///
/// Reads run with a short timeout so an *idle* connection notices
/// engine-wide shutdown instead of blocking the daemon's exit forever.
fn serve_connection(engine: &ServeEngine, stream: TcpStream) -> std::io::Result<()> {
    stream.set_nonblocking(false)?;
    stream.set_read_timeout(Some(Duration::from_millis(200)))?;
    let mut reader = BufReader::new(stream.try_clone()?);
    let mut writer = stream;
    // One persistent buffer: a timeout may interrupt mid-line, and the
    // partial bytes already appended must survive until the line completes.
    let mut line = String::new();
    loop {
        match reader.read_line(&mut line) {
            Ok(0) => return Ok(()), // EOF — peer disconnected
            Ok(_) => {
                if !line.trim().is_empty() {
                    let (response, shutdown) = handle_line(engine, line.trim_end());
                    writeln!(writer, "{response}")?;
                    writer.flush()?;
                    if shutdown {
                        return Ok(());
                    }
                }
                line.clear();
            }
            Err(e)
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                ) =>
            {
                if engine.is_shutting_down() {
                    return Ok(());
                }
            }
            Err(e) => return Err(e),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{EngineConfig, ServeEngine};
    use std::io::Cursor;

    fn engine() -> crate::engine::EngineHandle {
        ServeEngine::start(EngineConfig {
            workers: 1,
            shards: 1,
            ..EngineConfig::default()
        })
    }

    #[test]
    fn stdio_session_submits_polls_and_fetches() {
        let handle = engine();
        let script = concat!(
            r#"{"cmd":"ping"}"#,
            "\n",
            r#"{"cmd":"submit","models":"phi-2","bits":"4","proxy":"tiny"}"#,
            "\n",
        );
        let mut out = Vec::new();
        serve_lines(handle.engine(), Cursor::new(script), &mut out).unwrap();
        let out = String::from_utf8(out).unwrap();
        let lines: Vec<&str> = out.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].contains(r#""ok":true"#) && lines[0].contains("stats"));
        assert!(lines[1].contains(r#""job":"job-1""#));
        // serve_lines drained on EOF, so the job is done now.
        let (status, _) = handle_line(handle.engine(), r#"{"cmd":"status","job":"job-1"}"#);
        assert!(status.contains(r#""status":"done""#), "{status}");
        let (result, _) = handle_line(handle.engine(), r#"{"cmd":"result","job":"job-1"}"#);
        assert!(result.contains(r#""records""#), "result carries the report");
        handle.shutdown();
    }

    #[test]
    fn malformed_lines_get_error_responses_not_disconnects() {
        let handle = engine();
        let mut out = Vec::new();
        serve_lines(
            handle.engine(),
            Cursor::new("garbage\n\n{\"cmd\":\"list\"}\n"),
            &mut out,
        )
        .unwrap();
        let out = String::from_utf8(out).unwrap();
        let lines: Vec<&str> = out.lines().collect();
        assert_eq!(lines.len(), 2, "blank line skipped, two responses: {out}");
        assert!(lines[0].contains(r#""ok":false"#));
        assert!(lines[1].contains(r#""jobs":[]"#));
        handle.shutdown();
    }

    #[test]
    fn shutdown_line_stops_the_session() {
        let handle = engine();
        let script = concat!(r#"{"cmd":"shutdown"}"#, "\n", r#"{"cmd":"ping"}"#, "\n");
        let mut out = Vec::new();
        serve_lines(handle.engine(), Cursor::new(script), &mut out).unwrap();
        let out = String::from_utf8(out).unwrap();
        assert_eq!(out.lines().count(), 1, "nothing served after shutdown");
        assert!(out.contains("shutting_down"));
        handle.shutdown();
    }

    #[test]
    fn idle_connections_do_not_block_shutdown() {
        let handle = engine();
        let listener = bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let engine_arc = Arc::clone(handle.engine());
        let server = std::thread::spawn(move || serve_listener(engine_arc, listener));

        // Client A connects and goes silent.
        let idle = TcpStream::connect(addr).unwrap();
        // Client B orders shutdown.
        let mut b = TcpStream::connect(addr).unwrap();
        writeln!(b, r#"{{"cmd":"shutdown"}}"#).unwrap();
        let mut response = String::new();
        BufReader::new(b).read_line(&mut response).unwrap();
        assert!(response.contains("shutting_down"));

        // The daemon must exit despite A's open idle connection.
        let (tx, rx) = std::sync::mpsc::channel();
        std::thread::spawn(move || {
            let _ = tx.send(server.join());
        });
        rx.recv_timeout(Duration::from_secs(10))
            .expect("serve_listener must return while an idle connection is open")
            .unwrap()
            .unwrap();
        drop(idle);
        handle.shutdown();
    }

    #[test]
    fn tcp_round_trip_over_localhost() {
        let handle = engine();
        let listener = bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let engine_arc = Arc::clone(handle.engine());
        let server = std::thread::spawn(move || serve_listener(engine_arc, listener));

        let stream = TcpStream::connect(addr).unwrap();
        let mut reader = BufReader::new(stream.try_clone().unwrap());
        let mut writer = stream;
        let mut send = |line: &str| -> String {
            writeln!(writer, "{line}").unwrap();
            let mut response = String::new();
            reader.read_line(&mut response).unwrap();
            response
        };
        let submitted = send(r#"{"cmd":"submit","models":"phi-2","bits":"4","proxy":"tiny"}"#);
        assert!(submitted.contains(r#""job":"job-1""#), "{submitted}");
        // Poll until done (the engine is fast at tiny proxy size).
        loop {
            let status = send(r#"{"cmd":"status","job":"job-1"}"#);
            if status.contains(r#""status":"done""#) {
                break;
            }
            std::thread::sleep(Duration::from_millis(20));
        }
        let result = send(r#"{"cmd":"result","job":"job-1"}"#);
        assert!(result.contains(r#""records""#));
        assert!(send(r#"{"cmd":"shutdown"}"#).contains("shutting_down"));
        server.join().unwrap().unwrap();
        handle.shutdown();
    }
}
