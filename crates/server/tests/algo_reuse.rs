//! Algorithm-group reuse property test: the daemon-wide algorithm cache and
//! the group-aware work partitioning must be invisible in results and
//! exactly predictable in their accounting.
//!
//! Each case draws two grids that vary the *hardware* axes (task shape,
//! accelerator, scale dtype) on top of the classic bit-width axis, submits
//! them sequentially through a multi-shard daemon, and asserts that
//!
//! 1. every report is bit-identical (records JSON, CSV rendering, and skip
//!    list) to a direct, cache-free sweep of the same grid, and
//! 2. the daemon's `algo_hits` / `algo_misses` counters land exactly on the
//!    plan-derived prediction: a cold job misses once per distinct
//!    [`AlgoKey`] of its uncached remainder (group-aware units never split a
//!    group, so no group is computed twice), and a second overlapping job
//!    hits once per remainder group the first job already published.
//!
//! Real pipelines run per case, so the case count is capped like the
//! recovery suite's.  A separate pipeline-free property test pins the
//! [`plan_units`] partition itself: units cover the remainder disjointly,
//! never split an algorithm group, and number `min(max_units, groups)`.

use bitmod::accel::AcceleratorKind;
use bitmod::llm::config::LlmModel;
use bitmod::llm::memory::TaskShape;
use bitmod::llm::proxy::ProxyConfig;
use bitmod::quant::ScaleDtype;
use bitmod::shard::plan_units;
use bitmod::sweep::{AlgoKey, SweepConfig, SweepReport};
use bitmod_server::coordinator::{Coordinator, CoordinatorConfig};
use bitmod_server::job::JobStatus;
use proptest::prelude::Strategy;
use std::collections::{HashMap, HashSet};
use std::sync::{Mutex, OnceLock};

/// One drawn grid: bit widths (straddling validity, as in the overlap
/// suite) crossed with hardware axes that multiply points *without*
/// multiplying algorithm groups — task shapes and accelerators — plus an
/// optional second scale dtype, which does multiply groups.
#[derive(Debug, Clone, PartialEq)]
struct GridSpec {
    bits: Vec<u8>,
    tasks: Vec<TaskShape>,
    accelerators: Vec<AcceleratorKind>,
    scale_fp16: bool,
}

fn grid_cfg(spec: &GridSpec) -> SweepConfig {
    let mut cfg = SweepConfig::new(vec![LlmModel::Phi2B], spec.bits.clone())
        .with_proxy(ProxyConfig::tiny())
        .with_tasks(spec.tasks.clone())
        .with_accelerators(spec.accelerators.clone());
    if spec.scale_fp16 {
        cfg = cfg.with_scale_dtypes(vec![ScaleDtype::Int(8), ScaleDtype::Fp16]);
    }
    cfg
}

/// Uninterrupted direct baselines, one per distinct spec, computed once per
/// test binary (cases frequently re-draw the same small grids).
fn baseline(spec: &GridSpec) -> SweepReport {
    static CACHE: OnceLock<Mutex<HashMap<String, SweepReport>>> = OnceLock::new();
    let cache = CACHE.get_or_init(|| Mutex::new(HashMap::new()));
    let mut cache = cache.lock().expect("baseline cache lock");
    cache
        .entry(format!("{spec:?}"))
        .or_insert_with(|| grid_cfg(spec).canonicalized().run())
        .clone()
}

fn records_json(report: &SweepReport) -> String {
    serde_json::to_string(&report.records).expect("records serialize")
}

/// The canonical expansion of a spec: per point, its point-store cache key
/// and its algorithm group (`None` for invalid points, which the sweep
/// skips and [`plan_units`] treats as singleton groups).
fn expansion(spec: &GridSpec) -> Vec<(String, Option<AlgoKey>)> {
    let cfg = grid_cfg(spec).canonicalized();
    cfg.grid()
        .iter()
        .map(|p| (p.cache_key(&cfg.proxy, cfg.seed), p.algo_key().ok()))
        .collect()
}

/// Draws a non-empty sorted subset of the 2..=5 bit widths (BitMoD covers
/// only 3–4, so drawn grids exercise skip handling too).
fn draw_bits(rng: &mut proptest::TestRng) -> Vec<u8> {
    let mut bits: Vec<u8> = (2u8..=5).filter(|_| (0u8..=1).sample(rng) == 1).collect();
    if bits.is_empty() {
        bits.push((3u8..=4).sample(rng));
    }
    bits
}

fn draw_spec(rng: &mut proptest::TestRng) -> GridSpec {
    let tasks = match (0u8..=2).sample(rng) {
        0 => vec![TaskShape::GENERATIVE],
        1 => vec![TaskShape::DISCRIMINATIVE],
        _ => vec![TaskShape::GENERATIVE, TaskShape::DISCRIMINATIVE],
    };
    const ACCELS: [AcceleratorKind; 3] = [
        AcceleratorKind::BitModLossy,
        AcceleratorKind::Ant,
        AcceleratorKind::BaselineFp16,
    ];
    let mut accelerators: Vec<AcceleratorKind> = ACCELS
        .into_iter()
        .filter(|_| (0u8..=1).sample(rng) == 1)
        .collect();
    if accelerators.is_empty() {
        accelerators.push(AcceleratorKind::BitModLossy);
    }
    GridSpec {
        bits: draw_bits(rng),
        tasks,
        accelerators,
        scale_fp16: (0u8..=1).sample(rng) == 1,
    }
}

/// What the daemon must report for one job: derived purely from the two
/// expansions, before anything runs.
struct Prediction {
    /// Remainder after point-store subtraction (grid indices don't matter
    /// here, only counts and groups).
    remainder_points: usize,
    /// Invalid remainder points (singleton groups, no algorithm work).
    remainder_invalid: usize,
    /// Distinct algorithm groups of the valid remainder.
    groups: Vec<AlgoKey>,
    /// Remainder groups already published by the previous job.
    hits: usize,
}

impl Prediction {
    /// The job's remainder against the point keys already in the store and
    /// the algorithm groups already in the cache.
    fn of(spec: &GridSpec, stored: &HashSet<String>, cached: &HashSet<AlgoKey>) -> Prediction {
        let mut groups = Vec::new();
        let mut remainder_points = 0;
        let mut remainder_invalid = 0;
        for (key, algo) in expansion(spec) {
            if stored.contains(&key) {
                continue;
            }
            remainder_points += 1;
            match algo {
                Some(k) if !groups.contains(&k) => groups.push(k),
                Some(_) => {}
                None => remainder_invalid += 1,
            }
        }
        let hits = groups.iter().filter(|k| cached.contains(k)).count();
        Prediction {
            remainder_points,
            remainder_invalid,
            groups,
            hits,
        }
    }

    fn misses(&self) -> usize {
        self.groups.len() - self.hits
    }

    /// Work units the coordinator must dispatch: `plan_units` packs the
    /// valid groups plus one singleton per invalid point into
    /// `min(shards, groups)` units.
    fn units(&self, shards: usize) -> usize {
        shards.min(self.groups.len() + self.remainder_invalid)
    }
}

#[test]
fn overlapping_grids_reuse_algorithm_groups_and_stay_bit_identical() {
    // Real pipelines per case: cap well below the global PROPTEST_CASES.
    let cases = proptest::cases().min(2);
    let mut rng = proptest::TestRng::new(proptest::seed_for(
        "overlapping_grids_reuse_algorithm_groups_and_stay_bit_identical",
    ));
    for case in 0..cases {
        let spec_a = draw_spec(&mut rng);
        let spec_b = draw_spec(&mut rng);
        let shards = (1usize..=4).sample(&mut rng);

        // Plan-derived ground truth.  Job A starts against an empty daemon;
        // job B starts against A's point store and algorithm cache.
        let empty_store = HashSet::new();
        let empty_cache = HashSet::new();
        let predict_a = Prediction::of(&spec_a, &empty_store, &empty_cache);
        let stored_a: HashSet<String> = expansion(&spec_a).into_iter().map(|(k, _)| k).collect();
        let cached_a: HashSet<AlgoKey> = predict_a.groups.iter().copied().collect();
        let predict_b = Prediction::of(&spec_b, &stored_a, &cached_a);

        let handle = Coordinator::start(CoordinatorConfig {
            workers: 2,
            shards,
            ..CoordinatorConfig::default()
        });
        let c = handle.coordinator();

        // Job A: everything is a remainder, every group a cold miss.
        let out_a = c.submit(&grid_cfg(&spec_a));
        c.drain();
        let stats_a = c.stats();
        let view_a = c.status(&out_a.job_id).expect("job A exists");
        assert_eq!(view_a.status, JobStatus::Done, "case {case}");
        assert_eq!(
            (view_a.algo_hits, view_a.algo_misses),
            (0, predict_a.groups.len()),
            "case {case} ({spec_a:?}): a cold job computes each group exactly once"
        );
        assert_eq!(
            view_a.shards_total,
            predict_a.units(shards),
            "case {case}: group-aware units for the cold grid"
        );
        assert_eq!(
            (stats_a.algo_hits, stats_a.algo_misses, stats_a.algo_cached),
            (0, predict_a.groups.len() as u64, predict_a.groups.len()),
            "case {case}: daemon cache accounting after the cold job"
        );

        // Job B: the point-store overlap never reaches the executors; the
        // algorithm overlap of what remains is served from the cache.
        let out_b = c.submit(&grid_cfg(&spec_b));
        c.drain();
        let stats_b = c.stats();

        if out_b.deduped {
            // Identical canonical grids take the whole-job dedup fast path.
            assert_eq!(
                predict_b.remainder_points, 0,
                "case {case}: dedup implies a fully overlapping grid"
            );
            assert_eq!(stats_b.algo_hits, stats_a.algo_hits);
            assert_eq!(stats_b.algo_misses, stats_a.algo_misses);
        } else {
            let view_b = c.status(&out_b.job_id).expect("job B exists");
            assert_eq!(view_b.status, JobStatus::Done, "case {case}");
            assert_eq!(
                (view_b.algo_hits, view_b.algo_misses),
                (predict_b.hits, predict_b.misses()),
                "case {case} ({spec_a:?} then {spec_b:?}): remainder groups split \
                 exactly into cached vs fresh"
            );
            assert_eq!(
                view_b.shards_total,
                predict_b.units(shards),
                "case {case}: group-aware units for the remainder"
            );
            assert_eq!(
                stats_b.algo_hits - stats_a.algo_hits,
                predict_b.hits as u64,
                "case {case}: every reused group is a cache hit"
            );
            assert_eq!(
                stats_b.algo_misses - stats_a.algo_misses,
                predict_b.misses() as u64,
                "case {case}: every fresh group is a cache miss"
            );
        }

        // Bit-identity against cache-free direct sweeps, in the records
        // JSON, the rendered CSV, and the skip list — for both jobs.
        for (label, spec, out) in [("A", &spec_a, &out_a), ("B", &spec_b, &out_b)] {
            let served = c.result(&out.job_id).unwrap().unwrap();
            let direct = baseline(spec);
            assert_eq!(
                records_json(&served),
                records_json(&direct),
                "case {case} job {label} ({spec:?}, {shards} shards): cached + \
                 fresh assembly diverged from the direct sweep"
            );
            assert_eq!(
                served.to_csv(),
                direct.to_csv(),
                "case {case} job {label}: CSV rendering diverged"
            );
            assert_eq!(
                served.skipped, direct.skipped,
                "case {case} job {label}: skip list diverged"
            );
        }
        handle.shutdown();
    }
}

#[test]
fn plan_units_covers_the_remainder_without_splitting_groups() {
    // No pipelines run here — partitioning is pure planning — so this can
    // afford the full configured case count.
    let cases = proptest::cases();
    let mut rng = proptest::TestRng::new(proptest::seed_for(
        "plan_units_covers_the_remainder_without_splitting_groups",
    ));
    for case in 0..cases {
        let spec = draw_spec(&mut rng);
        let cfg = grid_cfg(&spec).canonicalized();
        let grid = cfg.grid();
        let remainder: Vec<usize> = (0..grid.len())
            .filter(|_| (0u8..=1).sample(&mut rng) == 1)
            .collect();
        let max_units = (1usize..=6).sample(&mut rng);

        let units = plan_units(&cfg, &remainder, max_units);

        // Disjoint cover: the units' indices are exactly the remainder.
        let mut covered: Vec<usize> = units.iter().flatten().copied().collect();
        covered.sort_unstable();
        let mut expected = remainder.clone();
        expected.sort_unstable();
        assert_eq!(
            covered, expected,
            "case {case} ({spec:?}): units must partition the remainder"
        );

        // Unit count: min(max_units, groups), where invalid points are
        // singleton groups; no unit is empty.
        let mut group_keys: Vec<AlgoKey> = Vec::new();
        let mut invalid = 0usize;
        for &i in &remainder {
            match grid[i].algo_key().ok() {
                Some(k) if !group_keys.contains(&k) => group_keys.push(k),
                Some(_) => {}
                None => invalid += 1,
            }
        }
        let groups = group_keys.len() + invalid;
        let expected_units = if remainder.is_empty() {
            0
        } else {
            max_units.min(groups)
        };
        assert_eq!(
            units.len(),
            expected_units,
            "case {case}: units must number min(max_units, groups)"
        );
        assert!(
            units.iter().all(|u| !u.is_empty()),
            "case {case}: no unit may be empty"
        );

        // Never split: each algorithm group lands in exactly one unit, even
        // when units are scarce (groups ≥ units) and packing is tight.
        let mut owner: HashMap<AlgoKey, usize> = HashMap::new();
        for (u, unit) in units.iter().enumerate() {
            for &i in unit {
                if let Ok(key) = grid[i].algo_key() {
                    let claimed = *owner.entry(key).or_insert(u);
                    assert_eq!(
                        claimed, u,
                        "case {case}: group {key:?} split across units {claimed} and {u}"
                    );
                }
            }
        }

        // Deterministic: the partition is a pure function of its inputs.
        assert_eq!(
            units,
            plan_units(&cfg, &remainder, max_units),
            "case {case}: plan_units must be deterministic"
        );
    }
}
