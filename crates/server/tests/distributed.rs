//! End-to-end distributed serving: a pure coordinator (no in-process
//! executors) with real `attach_and_run` remote workers over localhost TCP.
//! The merged report must be bit-identical (CSV and records) to a direct
//! sweep, a vanished worker's shard must requeue via the lease timeout, and
//! shutdown must release every attached worker.

use bitmod::llm::config::LlmModel;
use bitmod::llm::proxy::ProxyConfig;
use bitmod::sweep::SweepConfig;
use bitmod_server::coordinator::{Coordinator, CoordinatorConfig};
use bitmod_server::executor::{attach_and_run, AttachOptions};
use bitmod_server::job::JobStatus;
use std::sync::Arc;
use std::time::Duration;

fn tiny_cfg() -> SweepConfig {
    SweepConfig::new(vec![LlmModel::Phi2B], vec![3, 4]).with_proxy(ProxyConfig::tiny())
}

/// Starts a listener for `coordinator` on an ephemeral port; returns the
/// address and the serve thread.
fn listen(
    coordinator: &Arc<Coordinator>,
) -> (String, std::thread::JoinHandle<std::io::Result<()>>) {
    let listener = bitmod_server::serve::bind("127.0.0.1:0").expect("bind ephemeral port");
    let addr = listener.local_addr().unwrap().to_string();
    let c = Arc::clone(coordinator);
    let server = std::thread::spawn(move || bitmod_server::serve::serve_listener(c, listener));
    (addr, server)
}

fn attach_worker(
    addr: &str,
    name: &str,
) -> std::thread::JoinHandle<Result<bitmod_server::executor::AttachOutcome, String>> {
    let opts = AttachOptions {
        poll: Duration::from_millis(25),
        quiet: true,
        ..AttachOptions::new(addr, name)
    };
    std::thread::spawn(move || attach_and_run(&opts))
}

#[test]
fn two_remote_workers_merge_bit_identically_to_a_direct_sweep() {
    let cfg = tiny_cfg();
    let direct = cfg.canonicalized().run();

    let handle = Coordinator::start(CoordinatorConfig {
        workers: 0, // every shard must travel over TCP
        shards: 4,
        ..CoordinatorConfig::default()
    });
    let (addr, server) = listen(handle.coordinator());
    let w1 = attach_worker(&addr, "w1");
    let w2 = attach_worker(&addr, "w2");

    let out = handle.coordinator().submit(&cfg);
    handle.coordinator().drain();
    let served = handle.coordinator().result(&out.job_id).unwrap().unwrap();
    assert_eq!(
        serde_json::to_string(&served.records).unwrap(),
        serde_json::to_string(&direct.records).unwrap(),
        "remote merge must be bit-identical to the direct sweep"
    );
    assert_eq!(served.to_csv(), direct.to_csv(), "CSV identical too");

    let stats = handle.coordinator().stats();
    assert_eq!(stats.remote_executors, 2);
    assert_eq!(stats.done, 1);

    // Shutdown propagates to the workers through their lease polls.
    handle.coordinator().request_shutdown();
    let o1 = w1.join().unwrap().expect("worker 1 exits cleanly");
    let o2 = w2.join().unwrap().expect("worker 2 exits cleanly");
    assert_eq!(
        o1.shards_run + o2.shards_run,
        4,
        "the four shards were split across the attached workers"
    );
    server.join().unwrap().unwrap();
    handle.shutdown();
}

#[test]
fn vanished_worker_leases_requeue_and_the_job_still_completes() {
    let cfg = tiny_cfg().with_seed(23);
    let direct = cfg.canonicalized().run();

    let handle = Coordinator::start(CoordinatorConfig {
        workers: 0,
        shards: 2,
        lease_timeout: Duration::from_millis(300),
        ..CoordinatorConfig::default()
    });
    let c = handle.coordinator();
    let out = c.submit(&cfg);

    // A "worker" that leases a shard and then dies: no heartbeat, no
    // result.  (This is exactly what `kill -9` on a worker process leaves.)
    let ghost = c.register_executor("ghost", true);
    let (work, _) = c.try_lease(&ghost);
    assert!(work.is_some(), "the ghost really held a shard");

    // A healthy worker attaches afterwards; once the ghost's lease expires
    // its shard requeues and the healthy worker finishes the whole job.
    let (addr, server) = listen(c);
    let w = attach_worker(&addr, "healthy");

    c.drain();
    assert_eq!(c.status(&out.job_id).unwrap().status, JobStatus::Done);
    let served = c.result(&out.job_id).unwrap().unwrap();
    assert_eq!(
        serde_json::to_string(&served.records).unwrap(),
        serde_json::to_string(&direct.records).unwrap(),
        "requeued shard must not change the merged result"
    );
    assert!(
        c.stats().requeued_shards >= 1,
        "the ghost's lease expired and requeued"
    );

    c.request_shutdown();
    let outcome = w.join().unwrap().expect("healthy worker exits cleanly");
    assert_eq!(outcome.shards_run, 2, "healthy worker ran both shards");
    server.join().unwrap().unwrap();
    handle.shutdown();
}
