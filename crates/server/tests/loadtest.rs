//! Deterministic end-to-end load tests: the CLI's open-loop load generator
//! against a real TCP daemon, in-process.
//!
//! The generator's schedule is a pure function of its seed, and its overlap
//! design (every overlapping grid is a subset of a large grid primed before
//! the storm) makes the daemon's dedup and point-cache accounting an exact
//! function of the plan — so these tests assert *equalities*, not bounds:
//! every job completes, the job count and cache hit rate match the schedule
//! exactly, every returned report is bit-identical to a direct in-process
//! sweep of the same grid, and two consecutive runs against fresh daemons
//! produce identical summaries.  A second test kills a worker mid-load and
//! still requires zero failed jobs (the lease requeue path), and a third
//! starts the daemon *after* the load generator to pin the client's
//! connect backoff.

use bitmod_cli::loadgen::{self, LoadConfig};
use bitmod_server::coordinator::{Coordinator, CoordinatorConfig};
use bitmod_server::executor::{attach_and_run, backoff_schedule, AttachOptions};
use std::collections::HashMap;
use std::sync::Arc;
use std::time::Duration;

/// Starts a listener for `coordinator` on an ephemeral port; returns the
/// address and the serve thread.
fn listen(
    coordinator: &Arc<Coordinator>,
) -> (String, std::thread::JoinHandle<std::io::Result<()>>) {
    let listener = bitmod_server::serve::bind("127.0.0.1:0").expect("bind ephemeral port");
    let addr = listener.local_addr().unwrap().to_string();
    let c = Arc::clone(coordinator);
    let server = std::thread::spawn(move || bitmod_server::serve::serve_listener(c, listener));
    (addr, server)
}

/// The fixed-seed workload both deterministic runs replay.
fn load_cfg(addr: String) -> LoadConfig {
    LoadConfig {
        addr,
        clients: 3,
        jobs: 6,
        seed: 1234,
        mean_gap_ms: 2.0,
        mix: [3, 2, 1],
        overlap: 0.5,
        tiny_proxy: true,
        closed_loop: None,
        ping_every: Duration::from_millis(20),
    }
}

/// One full load run against a fresh two-worker daemon.
fn run_once() -> loadgen::LoadReport {
    let handle = Coordinator::start(CoordinatorConfig {
        workers: 2,
        shards: 2,
        ..CoordinatorConfig::default()
    });
    let (addr, server) = listen(handle.coordinator());
    let report = loadgen::run(&load_cfg(addr)).expect("load run succeeds");
    handle.coordinator().request_shutdown();
    server.join().unwrap().unwrap();
    handle.shutdown();
    report
}

#[test]
fn fixed_seed_load_is_deterministic_and_bit_identical() {
    let cfg = load_cfg(String::new());
    let plan = loadgen::plan(&cfg);
    let expected = plan.expected();
    // The seed draws a non-trivial schedule: some overlap, some unique.
    assert!(expected.deduped > 0, "seed 1234 must exercise dedup");
    assert!(expected.points_cached > 0, "and the point-cache hit path");

    let report = run_once();

    // Every job completes; nothing fails.
    assert_eq!(report.completed, cfg.jobs);
    assert_eq!(report.failed, 0);
    assert!(report.primed, "an overlapping schedule primes");

    // Dedup and point-cache accounting match the schedule *exactly*.
    assert_eq!(report.deduped, expected.deduped);
    assert_eq!(report.points_total, expected.points_total);
    assert_eq!(report.points_cached, expected.points_cached);
    let want_rate = expected.points_cached as f64 / expected.points_total as f64;
    assert!((report.hit_rate - want_rate).abs() < 1e-12);
    // The daemon's own hit/miss counters agree: a fresh daemon's deltas
    // over the run are exactly the plan's accounting.
    assert_eq!(report.daemon_hit_rate, Some(want_rate));

    // Bit-identity: every job's report (deduped ones included — they share
    // the creator's) hashes identically to a direct in-process sweep of the
    // same canonicalized grid.
    let mut direct_hashes: HashMap<String, u64> = HashMap::new();
    let mut hash_for = |cfg: &bitmod::sweep::SweepConfig| {
        *direct_hashes.entry(cfg.cache_key()).or_insert_with(|| {
            let direct = cfg.canonicalized().run();
            let json = serde_json::to_string(&direct.records).unwrap();
            loadgen::fnv1a(json.as_bytes())
        })
    };
    for (planned, outcome) in plan.jobs.iter().zip(&report.outcomes) {
        assert_eq!(planned.index, outcome.index);
        assert_eq!(
            outcome.records_hash,
            hash_for(&planned.config),
            "job {} must return records bit-identical to a direct sweep",
            planned.index
        );
    }
    let prime = report.prime.as_ref().expect("priming job ran");
    assert_eq!(prime.records_hash, hash_for(plan.prime.as_ref().unwrap()));

    // Latency distributions exist and are internally consistent.
    let lat = report.job_latency.as_ref().expect("jobs completed");
    assert_eq!(lat.samples, cfg.jobs);
    assert!(lat.p50_ms <= lat.p95_ms && lat.p95_ms <= lat.p99_ms);

    // A second run against a fresh daemon reproduces the summary verbatim.
    let again = run_once();
    assert_eq!(
        (
            again.completed,
            again.failed,
            again.deduped,
            again.points_total,
            again.points_cached,
            again.report_hash,
        ),
        (
            report.completed,
            report.failed,
            report.deduped,
            report.points_total,
            report.points_cached,
            report.report_hash,
        ),
        "two fixed-seed runs must produce identical summaries"
    );
}

#[test]
fn closed_loop_replay_matches_the_open_loop_run_bit_for_bit() {
    // Same plan, opposite replay discipline: two fixed-concurrency workers
    // pull jobs off the shared cursor instead of honoring arrival offsets.
    // The grids submitted are identical, and the daemon's dedup/point-cache
    // accounting is a function of the plan alone, so everything except the
    // latency distributions must match the open-loop runs exactly.
    let handle = Coordinator::start(CoordinatorConfig {
        workers: 2,
        shards: 2,
        ..CoordinatorConfig::default()
    });
    let (addr, server) = listen(handle.coordinator());
    let cfg = LoadConfig {
        closed_loop: Some(2),
        ..load_cfg(addr)
    };
    let report = loadgen::run(&cfg).expect("closed-loop run succeeds");
    handle.coordinator().request_shutdown();
    server.join().unwrap().unwrap();
    handle.shutdown();

    let expected = loadgen::plan(&cfg).expected();
    assert_eq!(report.completed, cfg.jobs);
    assert_eq!(report.failed, 0);
    assert_eq!(report.deduped, expected.deduped);
    assert_eq!(report.points_total, expected.points_total);
    assert_eq!(report.points_cached, expected.points_cached);

    // The fingerprint over index-ordered per-job record hashes equals the
    // open-loop run's: the replay discipline changes *when* jobs are
    // submitted, never *what* they compute.
    let open = run_once();
    assert_eq!(report.report_hash, open.report_hash);
}

#[test]
fn killed_worker_mid_load_still_completes_every_job() {
    // A pure coordinator whose only real executor attaches remotely, with a
    // short lease so the saboteur's abandoned shard requeues mid-run.
    let handle = Coordinator::start(CoordinatorConfig {
        workers: 0,
        shards: 4,
        lease_timeout: Duration::from_millis(300),
        ..CoordinatorConfig::default()
    });
    let c = handle.coordinator();

    // Seed one job, then lease a shard to a "worker" that immediately dies
    // (no heartbeat, no result) — what `kill -9` leaves behind.
    let seed_cfg = loadgen::JobSize::Medium.grid_config(true, 999);
    let seed_job = c.submit(&seed_cfg);
    let ghost = c.register_executor("ghost", true);
    let (work, _) = c.try_lease(&ghost);
    assert!(work.is_some(), "the ghost really held a shard");

    // The healthy worker attaches, then the storm runs over it.
    let (addr, server) = listen(c);
    let worker_opts = AttachOptions {
        poll: Duration::from_millis(25),
        quiet: true,
        ..AttachOptions::new(&addr, "healthy")
    };
    let worker = std::thread::spawn(move || attach_and_run(&worker_opts));

    let cfg = LoadConfig {
        jobs: 6,
        clients: 2,
        mean_gap_ms: 2.0,
        ..load_cfg(addr)
    };
    let report = loadgen::run(&cfg).expect("load run succeeds despite the dead worker");

    // Zero failed jobs: the ghost's lease expired and its shard requeued
    // onto the healthy worker.
    assert_eq!(report.failed, 0);
    assert_eq!(report.completed, cfg.jobs);
    assert!(c.stats().requeued_shards >= 1, "the dead lease requeued");
    // The seeded job the ghost abandoned completed too.
    assert!(c.result(&seed_job.job_id).unwrap().is_ok());

    c.request_shutdown();
    worker
        .join()
        .unwrap()
        .expect("healthy worker exits cleanly");
    server.join().unwrap().unwrap();
    handle.shutdown();
}

#[test]
fn clients_launched_before_the_daemon_connect_via_backoff() {
    // Reserve an ephemeral port, then release it so the load generator
    // targets an address nothing is listening on yet.
    let addr = {
        let probe = bitmod_server::serve::bind("127.0.0.1:0").unwrap();
        probe.local_addr().unwrap().to_string()
    };

    // Launch the load first: its connect must survive the refused attempts.
    let cfg = LoadConfig {
        jobs: 2,
        clients: 1,
        mean_gap_ms: 0.0,
        overlap: 0.0,
        ..load_cfg(addr.clone())
    };
    let load = std::thread::spawn(move || loadgen::run(&cfg));

    // Start the daemon well inside the client's ~3s backoff budget.
    std::thread::sleep(Duration::from_millis(300));
    let handle = Coordinator::start(CoordinatorConfig {
        workers: 1,
        ..CoordinatorConfig::default()
    });
    let listener = bitmod_server::serve::bind(&addr).expect("rebind the reserved port");
    let c = Arc::clone(handle.coordinator());
    let server = std::thread::spawn(move || bitmod_server::serve::serve_listener(c, listener));

    let report = load
        .join()
        .unwrap()
        .expect("clients outlive the daemon's late start");
    assert_eq!(report.completed, 2);
    assert_eq!(report.failed, 0);

    handle.coordinator().request_shutdown();
    server.join().unwrap().unwrap();
    handle.shutdown();
}

#[test]
fn backoff_schedule_is_bounded_and_doubles() {
    let schedule = backoff_schedule();
    assert_eq!(schedule.len(), 7, "seven connection attempts");
    assert_eq!(schedule[0], Duration::ZERO, "first attempt is immediate");
    assert_eq!(schedule[1], Duration::from_millis(50));
    for w in schedule[1..].windows(2) {
        assert_eq!(w[1], w[0] * 2, "delays double");
    }
    let total: Duration = schedule.iter().sum();
    assert_eq!(
        total,
        Duration::from_millis(3150),
        "a late daemon has ~3s to come up"
    );
}
