//! Overlap property test: the point-level result cache must make any pair
//! of overlapping grids behave as one incremental sweep database.
//!
//! Each case draws two overlapping bit-width grids over the same model,
//! proxy, and seed, submits them sequentially, and asserts that the second
//! job (a) dispatched work units over *exactly* the set-difference of the
//! two expanded grids — the overlap is served from the point store — and
//! (b) produced a report bit-identical (records JSON *and* CSV rendering)
//! to a direct, cache-free sweep of its grid.  Real pipelines run per case,
//! so the case count is capped like the recovery suite's (and the suite
//! belongs under `cargo test --release`, per the repo's test-speed notes).

use bitmod::llm::config::LlmModel;
use bitmod::llm::proxy::ProxyConfig;
use bitmod::sweep::{SweepConfig, SweepReport};
use bitmod_server::coordinator::{Coordinator, CoordinatorConfig};
use bitmod_server::job::JobStatus;
use proptest::prelude::Strategy;
use std::collections::{HashMap, HashSet};
use std::sync::{Mutex, OnceLock};

/// One candidate grid: a non-empty, sorted set of bit widths over Phi-2 at
/// tiny proxy size.  The 2..=5 span deliberately straddles validity — BitMoD
/// covers only 3–4 bits, so drawn grids exercise skip caching too.
fn grid_cfg(bits: &[u8]) -> SweepConfig {
    SweepConfig::new(vec![LlmModel::Phi2B], bits.to_vec()).with_proxy(ProxyConfig::tiny())
}

/// Uninterrupted direct baselines, one per distinct bits set, computed once
/// per test binary (cases frequently re-draw the same small sets).
fn baseline(bits: &[u8]) -> SweepReport {
    static CACHE: OnceLock<Mutex<HashMap<Vec<u8>, SweepReport>>> = OnceLock::new();
    let cache = CACHE.get_or_init(|| Mutex::new(HashMap::new()));
    let mut cache = cache.lock().expect("baseline cache lock");
    cache
        .entry(bits.to_vec())
        .or_insert_with(|| grid_cfg(bits).canonicalized().run())
        .clone()
}

fn records_json(report: &SweepReport) -> String {
    serde_json::to_string(&report.records).expect("records serialize")
}

/// The point cache keys of a grid's canonical expansion.
fn point_keys(bits: &[u8]) -> Vec<String> {
    let cfg = grid_cfg(bits).canonicalized();
    cfg.grid()
        .iter()
        .map(|p| p.cache_key(&cfg.proxy, cfg.seed))
        .collect()
}

/// Draws a non-empty sorted subset of the 2..=5 bit widths.
fn draw_bits(rng: &mut proptest::TestRng) -> Vec<u8> {
    let mut bits: Vec<u8> = (2u8..=5).filter(|_| (0u8..=1).sample(rng) == 1).collect();
    if bits.is_empty() {
        bits.push((3u8..=4).sample(rng));
    }
    bits
}

#[test]
fn overlapping_grids_reuse_cached_points_and_stay_bit_identical() {
    // Real pipelines per case: cap well below the global PROPTEST_CASES.
    let cases = proptest::cases().min(3);
    let mut rng = proptest::TestRng::new(proptest::seed_for(
        "overlapping_grids_reuse_cached_points_and_stay_bit_identical",
    ));
    for case in 0..cases {
        let bits_a = draw_bits(&mut rng);
        let bits_b = draw_bits(&mut rng);
        let shards = (1usize..=4).sample(&mut rng);

        // The ground truth the coordinator must reproduce: the exact
        // set-difference of the two expanded grids.
        let keys_a: HashSet<String> = point_keys(&bits_a).into_iter().collect();
        let keys_b = point_keys(&bits_b);
        let expected_cached = keys_b.iter().filter(|k| keys_a.contains(*k)).count();
        let expected_fresh = keys_b.len() - expected_cached;

        let handle = Coordinator::start(CoordinatorConfig {
            workers: 2,
            shards,
            ..CoordinatorConfig::default()
        });
        let c = handle.coordinator();
        c.submit(&grid_cfg(&bits_a));
        c.drain();

        let before = c.stats();
        let out = c.submit(&grid_cfg(&bits_b));
        c.drain();
        let after = c.stats();

        if out.deduped {
            // Identical canonical grids are the whole-job dedup fast path;
            // nothing touches the point store on the second submit.
            assert_eq!(
                expected_fresh, 0,
                "case {case}: dedup implies a fully overlapping grid"
            );
            assert_eq!(after.point_hits, before.point_hits);
        } else {
            let view = c.status(&out.job_id).expect("job exists");
            assert_eq!(view.status, JobStatus::Done, "case {case}");
            assert_eq!(
                (view.points_total, view.points_cached),
                (keys_b.len(), expected_cached),
                "case {case} (bits {bits_a:?} then {bits_b:?}): the overlap must be cached"
            );
            // The dispatched work covers exactly the set-difference: no unit
            // is empty, so the unit count is the remainder clamped by the
            // configured shards (zero when everything was cached).
            assert_eq!(
                view.shards_total,
                shards.min(expected_fresh),
                "case {case}: work units must cover only the {expected_fresh} uncached point(s)"
            );
            assert_eq!(
                after.point_hits - before.point_hits,
                expected_cached,
                "case {case}: every overlap point is a store hit"
            );
            assert_eq!(
                after.point_misses - before.point_misses,
                expected_fresh,
                "case {case}: every set-difference point is a store miss"
            );
        }

        // Bit-identity against a cache-free direct sweep, in both the
        // records JSON and the rendered CSV.
        let served = c.result(&out.job_id).unwrap().unwrap();
        let direct = baseline(&bits_b);
        assert_eq!(
            records_json(&served),
            records_json(&direct),
            "case {case} (bits {bits_a:?} then {bits_b:?}, {shards} shards): \
             cached + fresh assembly diverged from the direct sweep"
        );
        assert_eq!(
            served.to_csv(),
            direct.to_csv(),
            "case {case}: CSV rendering diverged"
        );
        assert_eq!(
            served.skipped, direct.skipped,
            "case {case}: skip list diverged"
        );
        handle.shutdown();
    }
}
