//! Crash-recovery property test: kill the coordinator mid-queue, restart it
//! from `--state-dir`, and assert the merged results are bit-identical to an
//! uninterrupted run.
//!
//! The "kill" is [`CoordinatorHandle::halt`] — executors abandon the queue
//! immediately (finishing at most the shard in hand) and the process-local
//! state is dropped, leaving only the journal, exactly what a `kill -9`
//! leaves behind.  Each case draws how many jobs to submit, how many to let
//! finish before the crash, and the shard decomposition; real pipelines run
//! per case, so the case count is capped (and the suite belongs under
//! `cargo test --release`, per the repo's test-speed notes).

use bitmod::llm::config::LlmModel;
use bitmod::llm::proxy::ProxyConfig;
use bitmod::sweep::{SweepConfig, SweepReport};
use bitmod_server::coordinator::{Coordinator, CoordinatorConfig};
use bitmod_server::job::JobStatus;
use proptest::prelude::Strategy;
use std::path::PathBuf;
use std::sync::OnceLock;
use std::time::{Duration, Instant};

/// The candidate jobs a case can submit: tiny single-model grids varying
/// only by seed, so their uninterrupted baselines are cheap to cache.
/// (Deliberately small — one bit width, tiny proxy — so the debug-mode
/// tier-1 run stays bounded; the shard/merge machinery under test is
/// grid-size-independent.)
fn job_cfg(seed: u64) -> SweepConfig {
    SweepConfig::new(vec![LlmModel::Phi2B], vec![4])
        .with_proxy(ProxyConfig::tiny())
        .with_seed(seed)
}

/// Uninterrupted baselines, one per seed, computed once per test binary.
fn baseline(seed: u64) -> &'static SweepReport {
    static BASELINES: OnceLock<Vec<SweepReport>> = OnceLock::new();
    // Cases draw at most three jobs, so only seeds 0..3 ever need baselines.
    let all = BASELINES.get_or_init(|| (0..3).map(|s| job_cfg(s).canonicalized().run()).collect());
    &all[seed as usize]
}

fn records_json(report: &SweepReport) -> String {
    serde_json::to_string(&report.records).expect("records serialize")
}

fn fresh_state_dir(case: u64) -> PathBuf {
    let dir =
        std::env::temp_dir().join(format!("bitmod-recovery-{}-case{case}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Waits (bounded) until at least `want` of the given jobs are done.
fn wait_for_done(coordinator: &Coordinator, jobs: &[String], want: usize) {
    let deadline = Instant::now() + Duration::from_secs(60);
    loop {
        let done = jobs
            .iter()
            .filter(|id| {
                coordinator
                    .status(id)
                    .is_some_and(|v| v.status == JobStatus::Done)
            })
            .count();
        if done >= want {
            return;
        }
        assert!(
            Instant::now() < deadline,
            "timed out waiting for {want} done job(s)"
        );
        std::thread::sleep(Duration::from_millis(10));
    }
}

#[test]
fn killed_coordinator_resumes_from_the_journal_bit_identically() {
    // Real pipelines per case: cap well below the global PROPTEST_CASES.
    let cases = proptest::cases().min(3);
    let mut rng = proptest::TestRng::new(proptest::seed_for(
        "killed_coordinator_resumes_from_the_journal_bit_identically",
    ));
    for case in 0..cases {
        let n_jobs = (1usize..=3).sample(&mut rng);
        let finish_before_crash = (0usize..=n_jobs).sample(&mut rng);
        let shards = (1usize..=3).sample(&mut rng);
        let dir = fresh_state_dir(case);
        let config = || CoordinatorConfig {
            workers: 1,
            shards,
            state_dir: Some(dir.clone()),
            ..CoordinatorConfig::default()
        };

        // First life: submit everything, let `finish_before_crash` jobs
        // complete, then halt mid-queue.
        let handle = Coordinator::start(config());
        let jobs: Vec<String> = (0..n_jobs as u64)
            .map(|seed| handle.coordinator().submit(&job_cfg(seed)).job_id)
            .collect();
        wait_for_done(handle.coordinator(), &jobs, finish_before_crash);
        handle.halt();

        // Second life: replay, resume, drain.
        let handle = Coordinator::start(config());
        let c = handle.coordinator();
        c.drain();
        for (seed, id) in jobs.iter().enumerate() {
            let view = c
                .status(id)
                .unwrap_or_else(|| panic!("case {case}: job {id} lost across the restart"));
            assert_eq!(
                view.status,
                JobStatus::Done,
                "case {case}: job {id} did not resume"
            );
            let served = c.result(id).unwrap().unwrap();
            assert_eq!(
                records_json(&served),
                records_json(baseline(seed as u64)),
                "case {case}: job {id} diverged from the uninterrupted run \
                 ({n_jobs} jobs, {finish_before_crash} finished pre-crash, {shards} shards)"
            );
            // Completed jobs keep serving the dedup/result cache.
            assert!(
                c.submit(&job_cfg(seed as u64)).deduped,
                "case {case}: job {id} fell out of the rebuilt cache"
            );
        }
        handle.shutdown();
        let _ = std::fs::remove_dir_all(&dir);
    }
}

#[test]
fn cache_cap_is_respected_when_the_journal_replays() {
    // Three completed jobs journaled, cap of one on restart: only the most
    // recently finished survives as the result cache (eviction re-derived
    // from the Done order, exactly as if the daemon had never died).
    let dir = fresh_state_dir(999);
    let handle = Coordinator::start(CoordinatorConfig {
        workers: 1,
        state_dir: Some(dir.clone()),
        ..CoordinatorConfig::default()
    });
    let ids: Vec<String> = (0..3)
        .map(|seed| handle.coordinator().submit(&job_cfg(seed)).job_id)
        .collect();
    handle.coordinator().drain();
    handle.halt();

    let handle = Coordinator::start(CoordinatorConfig {
        workers: 1,
        cache_cap: 1,
        state_dir: Some(dir.clone()),
        ..CoordinatorConfig::default()
    });
    let c = handle.coordinator();
    assert!(c.status(&ids[0]).is_none(), "oldest done job evicted");
    assert!(
        c.status(&ids[1]).is_none(),
        "second-oldest done job evicted"
    );
    assert_eq!(c.status(&ids[2]).unwrap().status, JobStatus::Done);
    assert!(c.submit(&job_cfg(2)).deduped, "newest job still cached");
    assert!(!c.submit(&job_cfg(0)).deduped, "evicted grids re-run");
    c.drain();
    handle.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}
