//! Crash-recovery property test: kill the coordinator mid-queue, restart it
//! from `--state-dir`, and assert the merged results are bit-identical to an
//! uninterrupted run.
//!
//! The "kill" is [`CoordinatorHandle::halt`] — executors abandon the queue
//! immediately (finishing at most the shard in hand) and the process-local
//! state is dropped, leaving only the journal, exactly what a `kill -9`
//! leaves behind.  Each case draws how many jobs to submit, how many to let
//! finish before the crash, and the shard decomposition; real pipelines run
//! per case, so the case count is capped (and the suite belongs under
//! `cargo test --release`, per the repo's test-speed notes).

use bitmod::llm::config::LlmModel;
use bitmod::llm::proxy::ProxyConfig;
use bitmod::sweep::{SweepConfig, SweepReport};
use bitmod_server::coordinator::{Coordinator, CoordinatorConfig};
use bitmod_server::job::JobStatus;
use proptest::prelude::Strategy;
use std::path::PathBuf;
use std::sync::OnceLock;
use std::time::{Duration, Instant};

/// The candidate jobs a case can submit: tiny single-model grids varying
/// only by seed, so their uninterrupted baselines are cheap to cache.
/// (Deliberately small — one bit width, tiny proxy — so the debug-mode
/// tier-1 run stays bounded; the shard/merge machinery under test is
/// grid-size-independent.)
fn job_cfg(seed: u64) -> SweepConfig {
    SweepConfig::new(vec![LlmModel::Phi2B], vec![4])
        .with_proxy(ProxyConfig::tiny())
        .with_seed(seed)
}

/// Uninterrupted baselines, one per seed, computed once per test binary.
fn baseline(seed: u64) -> &'static SweepReport {
    static BASELINES: OnceLock<Vec<SweepReport>> = OnceLock::new();
    // Cases draw at most three jobs, so only seeds 0..3 ever need baselines.
    let all = BASELINES.get_or_init(|| (0..3).map(|s| job_cfg(s).canonicalized().run()).collect());
    &all[seed as usize]
}

fn records_json(report: &SweepReport) -> String {
    serde_json::to_string(&report.records).expect("records serialize")
}

fn fresh_state_dir(case: u64) -> PathBuf {
    let dir =
        std::env::temp_dir().join(format!("bitmod-recovery-{}-case{case}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Waits (bounded) until at least `want` of the given jobs are done.
fn wait_for_done(coordinator: &Coordinator, jobs: &[String], want: usize) {
    let deadline = Instant::now() + Duration::from_secs(60);
    loop {
        let done = jobs
            .iter()
            .filter(|id| {
                coordinator
                    .status(id)
                    .is_some_and(|v| v.status == JobStatus::Done)
            })
            .count();
        if done >= want {
            return;
        }
        assert!(
            Instant::now() < deadline,
            "timed out waiting for {want} done job(s)"
        );
        std::thread::sleep(Duration::from_millis(10));
    }
}

#[test]
fn killed_coordinator_resumes_from_the_journal_bit_identically() {
    // Real pipelines per case: cap well below the global PROPTEST_CASES.
    let cases = proptest::cases().min(3);
    let mut rng = proptest::TestRng::new(proptest::seed_for(
        "killed_coordinator_resumes_from_the_journal_bit_identically",
    ));
    for case in 0..cases {
        let n_jobs = (1usize..=3).sample(&mut rng);
        let finish_before_crash = (0usize..=n_jobs).sample(&mut rng);
        let shards = (1usize..=3).sample(&mut rng);
        let dir = fresh_state_dir(case);
        let config = || CoordinatorConfig {
            workers: 1,
            shards,
            state_dir: Some(dir.clone()),
            ..CoordinatorConfig::default()
        };

        // First life: submit everything, let `finish_before_crash` jobs
        // complete, then halt mid-queue.
        let handle = Coordinator::start(config());
        let jobs: Vec<String> = (0..n_jobs as u64)
            .map(|seed| handle.coordinator().submit(&job_cfg(seed)).job_id)
            .collect();
        wait_for_done(handle.coordinator(), &jobs, finish_before_crash);
        handle.halt();

        // Second life: replay, resume, drain.
        let handle = Coordinator::start(config());
        let c = handle.coordinator();
        c.drain();
        for (seed, id) in jobs.iter().enumerate() {
            let view = c
                .status(id)
                .unwrap_or_else(|| panic!("case {case}: job {id} lost across the restart"));
            assert_eq!(
                view.status,
                JobStatus::Done,
                "case {case}: job {id} did not resume"
            );
            let served = c.result(id).unwrap().unwrap();
            assert_eq!(
                records_json(&served),
                records_json(baseline(seed as u64)),
                "case {case}: job {id} diverged from the uninterrupted run \
                 ({n_jobs} jobs, {finish_before_crash} finished pre-crash, {shards} shards)"
            );
            // Completed jobs keep serving the dedup/result cache.
            assert!(
                c.submit(&job_cfg(seed as u64)).deduped,
                "case {case}: job {id} fell out of the rebuilt cache"
            );
        }
        handle.shutdown();
        let _ = std::fs::remove_dir_all(&dir);
    }
}

/// Satellite of the point-cache work: a `kill -9` mid-second-overlapping-job
/// must not lose the points the first job (or the crashed job's own landed
/// shards) already computed.  Replay re-seeds the point store from the
/// journaled `done` and `shard-done` reports, the interrupted job
/// re-decomposes against it, and only the not-yet-landed points re-dispatch.
#[test]
fn overlapping_job_resumes_from_replayed_points_after_a_kill() {
    let dir = fresh_state_dir(777);
    let cfg_a = SweepConfig::new(vec![LlmModel::Phi2B], vec![3]).with_proxy(ProxyConfig::tiny());
    let cfg_b = SweepConfig::new(vec![LlmModel::Phi2B], vec![3, 4]).with_proxy(ProxyConfig::tiny());
    let config = |workers| CoordinatorConfig {
        workers,
        shards: 2,
        state_dir: Some(dir.clone()),
        ..CoordinatorConfig::default()
    };

    // First life, driven by hand through the remote-executor verbs so the
    // kill lands at an exact instant: the bits-3 job completes, then exactly
    // one of the bits-3,4 job's two single-point work units lands (its
    // journaled `shard-done` carries the full report) before the halt.
    let (a_id, b_id) = {
        let handle = Coordinator::start(config(0));
        let c = handle.coordinator();
        let exec = c.register_executor("hand", true);
        let a = c.submit(&cfg_a);
        while let (Some(w), _) = c.try_lease(&exec) {
            let report = bitmod::shard::run_partial_shard(&w.config, w.shard, &w.indices);
            c.complete_shard(&exec, w.lease, report).expect("landing");
        }
        assert_eq!(c.status(&a.job_id).unwrap().status, JobStatus::Done);
        let b = c.submit(&cfg_b);
        let (w, _) = c.try_lease(&exec);
        let w = w.expect("job B queued two uncached units");
        assert_eq!(w.job, b.job_id);
        let report = bitmod::shard::run_partial_shard(&w.config, w.shard, &w.indices);
        c.complete_shard(&exec, w.lease, report).expect("landing");
        assert_eq!(c.status(&b.job_id).unwrap().status, JobStatus::Running);
        handle.halt();
        (a.job_id, b.job_id)
    };

    // Second life, frozen (no executors): inspect what replay rebuilt
    // before anything re-runs.
    {
        let handle = Coordinator::start(config(0));
        let c = handle.coordinator();
        assert_eq!(c.status(&a_id).unwrap().status, JobStatus::Done);
        let stats = c.stats();
        assert!(
            stats.points_cached >= 3,
            "replay must seed A's two points plus B's landed one, got {}",
            stats.points_cached
        );
        // B re-decomposed against the replayed store: the overlap with A
        // (2 points) plus its own pre-crash landing (1 point) are cached;
        // only the one not-yet-landed point became a work unit again.
        let view = c.status(&b_id).expect("job B survived the crash");
        assert_eq!(
            (view.points_total, view.points_cached),
            (4, 3),
            "A's points and B's landed shard must serve B from the store"
        );
        assert_eq!(
            (view.status, view.shards_total),
            (JobStatus::Queued, 1),
            "only the not-yet-landed point re-dispatches"
        );
        handle.halt();
    }

    // Third life: the interrupted job completes, bit-identical to a direct
    // run, and the result cache still dedups job A's grid.
    let handle = Coordinator::start(config(1));
    let c = handle.coordinator();
    c.drain();
    assert_eq!(c.status(&b_id).unwrap().status, JobStatus::Done);
    let served = c.result(&b_id).unwrap().unwrap();
    let direct = cfg_b.canonicalized().run();
    assert_eq!(
        records_json(&served),
        records_json(&direct),
        "resumed overlapping job diverged from the uninterrupted run"
    );
    assert_eq!(served.to_csv(), direct.to_csv());
    assert!(
        c.submit(&cfg_a).deduped,
        "job A fell out of the result cache"
    );
    handle.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

/// Satellite of the point-cache work: a torn journal tail plus cap-driven
/// evictions must never leave stale points serving hits.  Evicting a job
/// drops only the points no other completed job still covers — co-owned
/// points keep serving, exclusively-owned ones stop.
#[test]
fn torn_tail_and_evictions_leave_no_stale_points() {
    let dir = fresh_state_dir(778);
    let bits =
        |b: Vec<u8>| SweepConfig::new(vec![LlmModel::Phi2B], b).with_proxy(ProxyConfig::tiny());
    let config = |workers| CoordinatorConfig {
        workers,
        cache_cap: 1,
        state_dir: Some(dir.clone()),
        ..CoordinatorConfig::default()
    };

    // First life, cap 1: the bits-3 job completes, then the overlapping
    // bits-3,4 job completes and evicts it.
    {
        let handle = Coordinator::start(config(1));
        let c = handle.coordinator();
        c.submit(&bits(vec![3]));
        c.drain();
        c.submit(&bits(vec![3, 4]));
        c.drain();
        assert_eq!(c.stats().evicted_jobs, 1);
        handle.halt();
    }

    // Crash mid-append: a truncated final line in the journal.
    {
        use std::io::Write;
        let mut f = std::fs::OpenOptions::new()
            .append(true)
            .open(dir.join("journal.jsonl"))
            .expect("journal exists");
        write!(f, "{{\"ev\":\"shard-done\",\"job\":\"jo").unwrap();
    }

    // Second life: the torn tail is skipped, the eviction is re-derived,
    // and the store serves exactly what the surviving job covers.
    let (c_id, d_id) = {
        let handle = Coordinator::start(config(0));
        let c = handle.coordinator();
        // A bits-3 submission completes instantly from the surviving job's
        // points — co-owned coverage survived the eviction…
        let covered = c.submit(&bits(vec![3]));
        assert!(!covered.deduped, "the evicted job must not dedup");
        let view = c.status(&covered.job_id).unwrap();
        assert_eq!((view.status, view.points_cached), (JobStatus::Done, 2));
        // …which, at cap 1, evicted the bits-3,4 job in turn.  Its bits-4
        // points have no surviving owner: they must stop serving hits
        // rather than linger as stale cache.
        let fresh = c.submit(&bits(vec![4]));
        assert!(!fresh.deduped);
        let view = c.status(&fresh.job_id).unwrap();
        assert_eq!((view.status, view.points_cached), (JobStatus::Queued, 0));
        handle.halt();
        (covered.job_id, fresh.job_id)
    };

    // Third life: the queued bits-4 job recomputes its points from scratch
    // and still matches a direct run — nothing stale leaked into it.  (The
    // instant bits-3 job replays as done; check it before the drain, since
    // finishing the bits-4 job evicts it at cap 1.)
    let handle = Coordinator::start(config(1));
    let c = handle.coordinator();
    assert_eq!(c.status(&c_id).unwrap().status, JobStatus::Done);
    c.drain();
    assert_eq!(c.status(&d_id).unwrap().status, JobStatus::Done);
    let served = c.result(&d_id).unwrap().unwrap();
    let direct = bits(vec![4]).canonicalized().run();
    assert_eq!(records_json(&served), records_json(&direct));
    handle.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn cache_cap_is_respected_when_the_journal_replays() {
    // Three completed jobs journaled, cap of one on restart: only the most
    // recently finished survives as the result cache (eviction re-derived
    // from the Done order, exactly as if the daemon had never died).
    let dir = fresh_state_dir(999);
    let handle = Coordinator::start(CoordinatorConfig {
        workers: 1,
        state_dir: Some(dir.clone()),
        ..CoordinatorConfig::default()
    });
    let ids: Vec<String> = (0..3)
        .map(|seed| handle.coordinator().submit(&job_cfg(seed)).job_id)
        .collect();
    handle.coordinator().drain();
    handle.halt();

    let handle = Coordinator::start(CoordinatorConfig {
        workers: 1,
        cache_cap: 1,
        state_dir: Some(dir.clone()),
        ..CoordinatorConfig::default()
    });
    let c = handle.coordinator();
    assert!(c.status(&ids[0]).is_none(), "oldest done job evicted");
    assert!(
        c.status(&ids[1]).is_none(),
        "second-oldest done job evicted"
    );
    assert_eq!(c.status(&ids[2]).unwrap().status, JobStatus::Done);
    assert!(c.submit(&job_cfg(2)).deduped, "newest job still cached");
    assert!(!c.submit(&job_cfg(0)).deduped, "evicted grids re-run");
    c.drain();
    handle.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}
