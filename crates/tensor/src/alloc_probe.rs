//! A counting global allocator for allocation-audit tests and benchmarks.
//!
//! The workspace's steady-state claim — the N-th proxy forward on a warm
//! harness performs **zero** heap allocations — is enforced by tests rather
//! than asserted in comments.  This module provides the probe: a
//! [`CountingAlloc`] that forwards to the system allocator while counting
//! every allocation (and allocated byte) with relaxed atomics.
//!
//! The module is always compiled (it is a handful of atomics and has no
//! dependencies) but is completely inert until a **binary** registers the
//! probe as its global allocator:
//!
//! ```ignore
//! #[global_allocator]
//! static ALLOC: bitmod_tensor::alloc_probe::CountingAlloc =
//!     bitmod_tensor::alloc_probe::CountingAlloc;
//! ```
//!
//! The allocation-audit integration test and the `bitmod-cli` binary do so;
//! library crates never pay the (two relaxed atomic increments per
//! allocation) overhead unless linked into such a binary.
//!
//! Measure a region by differencing [`alloc_count`] before and after:
//!
//! ```
//! use bitmod_tensor::alloc_probe::alloc_count;
//!
//! let before = alloc_count();
//! // ... code under audit ...
//! let allocs = alloc_count() - before; // 0 unless the probe is registered
//! # let _ = allocs;
//! ```
//!
//! Counters are process-wide, monotone and never reset, so concurrent
//! threads' allocations show up in every observer's delta — run audits on a
//! quiesced process (the gating test does).

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

static ALLOC_CALLS: AtomicU64 = AtomicU64::new(0);
static ALLOC_BYTES: AtomicU64 = AtomicU64::new(0);

/// A [`GlobalAlloc`] that forwards to [`System`] and counts allocations.
///
/// Register it with `#[global_allocator]` in a binary to activate the
/// [`alloc_count`] / [`alloc_bytes`] counters.  `realloc` counts as one
/// allocation (it may move the block); `dealloc` is not counted — the probe
/// tracks allocator *pressure*, not live-heap size.
#[derive(Debug, Default, Clone, Copy)]
pub struct CountingAlloc;

// SAFETY: defers entirely to `System` for memory management; the counter
// updates have no effect on allocator behavior.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOC_CALLS.fetch_add(1, Ordering::Relaxed);
        ALLOC_BYTES.fetch_add(layout.size() as u64, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOC_CALLS.fetch_add(1, Ordering::Relaxed);
        ALLOC_BYTES.fetch_add(layout.size() as u64, Ordering::Relaxed);
        System.alloc_zeroed(layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOC_CALLS.fetch_add(1, Ordering::Relaxed);
        ALLOC_BYTES.fetch_add(new_size as u64, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
}

/// Total number of heap allocations (`alloc` + `alloc_zeroed` + `realloc`
/// calls) since process start.  Always `0` unless a [`CountingAlloc`] is
/// registered as the global allocator.
pub fn alloc_count() -> u64 {
    ALLOC_CALLS.load(Ordering::Relaxed)
}

/// Total number of bytes requested from the heap since process start.
/// Always `0` unless a [`CountingAlloc`] is registered.
pub fn alloc_bytes() -> u64 {
    ALLOC_BYTES.load(Ordering::Relaxed)
}

/// `true` when the probe has observed at least one allocation — i.e. a
/// [`CountingAlloc`] is registered in this process and something has
/// allocated.  Lets shared reporting code (the bench harness) distinguish
/// "zero allocations" from "probe not installed".
pub fn probe_active() -> bool {
    alloc_count() > 0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_are_monotone() {
        // The probe is not registered in unit tests; counters may be zero
        // forever, but must never decrease.
        let a = alloc_count();
        let b = alloc_bytes();
        let v: Vec<u64> = (0..64).collect();
        assert!(alloc_count() >= a);
        assert!(alloc_bytes() >= b);
        drop(v);
        assert!(alloc_count() >= a);
    }
}
