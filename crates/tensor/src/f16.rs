//! Software half-precision (IEEE 754 binary16) arithmetic.
//!
//! BitMoD keeps activations in FP16 while weights are quantized; the
//! processing-element model in `bitmod-accel` therefore needs an exact
//! software FP16 type to (a) round activations the way the hardware sees them
//! and (b) validate the bit-serial datapath against a reference.  This module
//! implements conversions with round-to-nearest-even, which is also the
//! rounding mode the PE's shifter reserves guard bits for (Section IV-B).

use serde::{Deserialize, Serialize};
use std::fmt;

/// An IEEE 754 binary16 value stored as its 16-bit pattern.
///
/// Arithmetic is performed by converting to `f32`, operating, and rounding
/// back — which is exactly the "FP16 in, FP32 accumulate, FP16 out" behaviour
/// of typical accelerator datapaths.
///
/// # Example
///
/// ```
/// use bitmod_tensor::F16;
///
/// let x = F16::from_f32(1.5);
/// assert_eq!(x.to_f32(), 1.5);
/// // 2^-25 is below the subnormal range and flushes to zero.
/// assert_eq!(F16::from_f32(2.0f32.powi(-25)).to_f32(), 0.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub struct F16(pub u16);

/// Largest finite FP16 value (65504).
pub const F16_MAX: f32 = 65504.0;
/// Smallest positive normal FP16 value (2^-14).
pub const F16_MIN_POSITIVE: f32 = 6.103_515_6e-5;

impl F16 {
    /// Positive zero.
    pub const ZERO: F16 = F16(0);
    /// Value one.
    pub const ONE: F16 = F16(0x3C00);
    /// Positive infinity.
    pub const INFINITY: F16 = F16(0x7C00);
    /// Negative infinity.
    pub const NEG_INFINITY: F16 = F16(0xFC00);

    /// Converts an `f32` to FP16 with round-to-nearest-even.
    ///
    /// Values whose magnitude exceeds [`F16_MAX`] become infinity; values too
    /// small for the subnormal range flush to (signed) zero; NaN stays NaN.
    pub fn from_f32(value: f32) -> Self {
        let bits = value.to_bits();
        let sign = ((bits >> 16) & 0x8000) as u16;
        let exp = ((bits >> 23) & 0xFF) as i32;
        let mantissa = bits & 0x7F_FFFF;

        if exp == 0xFF {
            // Inf or NaN.
            let payload = if mantissa != 0 { 0x0200 } else { 0 };
            return F16(sign | 0x7C00 | payload);
        }

        // Unbiased exponent.
        let unbiased = exp - 127;
        if unbiased > 15 {
            // Overflow to infinity.
            return F16(sign | 0x7C00);
        }
        if unbiased >= -14 {
            // Normal range. 10-bit mantissa; round to nearest even on the
            // 13 dropped bits.
            let half_exp = ((unbiased + 15) as u16) << 10;
            let half_man = (mantissa >> 13) as u16;
            let round_bits = mantissa & 0x1FFF;
            let mut result = sign | half_exp | half_man;
            if round_bits > 0x1000 || (round_bits == 0x1000 && (half_man & 1) == 1) {
                result = result.wrapping_add(1); // may carry into the exponent; that is correct
            }
            return F16(result);
        }
        if unbiased >= -24 {
            // Subnormal range.
            let full_man = mantissa | 0x80_0000;
            let shift = (-14 - unbiased) as u32 + 13;
            let half_man = (full_man >> shift) as u16;
            let round_mask = (1u32 << shift) - 1;
            let round_bits = full_man & round_mask;
            let halfway = 1u32 << (shift - 1);
            let mut result = sign | half_man;
            if round_bits > halfway || (round_bits == halfway && (half_man & 1) == 1) {
                result = result.wrapping_add(1);
            }
            return F16(result);
        }
        // Underflow to signed zero.
        F16(sign)
    }

    /// Converts this FP16 value back to `f32` exactly.
    pub fn to_f32(self) -> f32 {
        let sign = ((self.0 & 0x8000) as u32) << 16;
        let exp = ((self.0 >> 10) & 0x1F) as u32;
        let man = (self.0 & 0x3FF) as u32;
        let bits = if exp == 0 {
            if man == 0 {
                sign // signed zero
            } else {
                // Subnormal: normalize.
                let mut exp32 = 127 - 15 + 1;
                let mut man32 = man;
                while man32 & 0x400 == 0 {
                    man32 <<= 1;
                    exp32 -= 1;
                }
                man32 &= 0x3FF;
                sign | ((exp32 as u32) << 23) | (man32 << 13)
            }
        } else if exp == 0x1F {
            if man == 0 {
                sign | 0x7F80_0000
            } else {
                sign | 0x7FC0_0000
            }
        } else {
            sign | ((exp + 127 - 15) << 23) | (man << 13)
        };
        f32::from_bits(bits)
    }

    /// Raw bit pattern.
    pub fn to_bits(self) -> u16 {
        self.0
    }

    /// Constructs from a raw bit pattern.
    pub fn from_bits(bits: u16) -> Self {
        F16(bits)
    }

    /// Sign bit (true if negative, including -0).
    pub fn is_sign_negative(self) -> bool {
        self.0 & 0x8000 != 0
    }

    /// Returns true if this value is NaN.
    pub fn is_nan(self) -> bool {
        (self.0 & 0x7C00) == 0x7C00 && (self.0 & 0x3FF) != 0
    }

    /// Returns true if this value is ±infinity.
    pub fn is_infinite(self) -> bool {
        (self.0 & 0x7FFF) == 0x7C00
    }

    /// Biased 5-bit exponent field.
    pub fn exponent_bits(self) -> u16 {
        (self.0 >> 10) & 0x1F
    }

    /// 10-bit mantissa field (without the hidden bit).
    pub fn mantissa_bits(self) -> u16 {
        self.0 & 0x3FF
    }

    /// Mantissa including the hidden bit, as an 11-bit integer, matching the
    /// "11-bit activation mantissa including the hidden bit" the BitMoD PE
    /// multiplies against (Fig. 5 of the paper).  Subnormals have no hidden
    /// bit set.
    pub fn significand11(self) -> u16 {
        if self.exponent_bits() == 0 {
            self.mantissa_bits()
        } else {
            self.mantissa_bits() | 0x400
        }
    }

    /// Unbiased exponent of the value interpreted as `(-1)^s * m * 2^e` where
    /// `m` is [`significand11`](Self::significand11) scaled by `2^-10`.
    pub fn unbiased_exponent(self) -> i32 {
        let e = self.exponent_bits() as i32;
        if e == 0 {
            -14
        } else {
            e - 15
        }
    }
}

impl fmt::Display for F16 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.to_f32())
    }
}

impl From<f32> for F16 {
    fn from(value: f32) -> Self {
        F16::from_f32(value)
    }
}

impl From<F16> for f32 {
    fn from(value: F16) -> Self {
        value.to_f32()
    }
}

/// Rounds an `f32` to the nearest representable FP16 value and returns it as
/// `f32`.  Convenience for quantizing a whole activation tensor to the
/// precision the accelerator actually sees.
pub fn round_to_f16(value: f32) -> f32 {
    F16::from_f32(value).to_f32()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_small_integers_roundtrip() {
        for i in -2048..=2048 {
            let x = i as f32;
            assert_eq!(F16::from_f32(x).to_f32(), x, "integer {i} should be exact");
        }
    }

    #[test]
    fn powers_of_two_roundtrip() {
        for e in -14..=15 {
            let x = 2.0f32.powi(e);
            assert_eq!(F16::from_f32(x).to_f32(), x, "2^{e} should be exact");
        }
    }

    #[test]
    fn known_bit_patterns() {
        assert_eq!(F16::from_f32(1.0).to_bits(), 0x3C00);
        assert_eq!(F16::from_f32(-2.0).to_bits(), 0xC000);
        assert_eq!(F16::from_f32(0.5).to_bits(), 0x3800);
        assert_eq!(F16::from_f32(65504.0).to_bits(), 0x7BFF);
    }

    #[test]
    fn overflow_goes_to_infinity() {
        assert!(F16::from_f32(1e6).is_infinite());
        assert!(F16::from_f32(-1e6).is_infinite());
        assert!(F16::from_f32(-1e6).is_sign_negative());
    }

    #[test]
    fn underflow_flushes_to_zero() {
        assert_eq!(F16::from_f32(1e-12).to_f32(), 0.0);
        let neg = F16::from_f32(-1e-12);
        assert_eq!(neg.to_f32(), 0.0);
        assert!(neg.is_sign_negative());
    }

    #[test]
    fn nan_is_preserved() {
        assert!(F16::from_f32(f32::NAN).is_nan());
        assert!(F16::from_f32(f32::NAN).to_f32().is_nan());
    }

    #[test]
    fn subnormals_roundtrip() {
        // Smallest positive subnormal is 2^-24.
        let tiny = 2.0f32.powi(-24);
        assert_eq!(F16::from_f32(tiny).to_f32(), tiny);
        let sub = 3.0 * 2.0f32.powi(-24);
        assert_eq!(F16::from_f32(sub).to_f32(), sub);
    }

    #[test]
    fn round_to_nearest_even() {
        // 1.0 + 2^-11 is exactly halfway between 1.0 and the next representable
        // value 1.0 + 2^-10; RNE keeps the even mantissa (1.0).
        let halfway = 1.0 + 2.0f32.powi(-11);
        assert_eq!(F16::from_f32(halfway).to_f32(), 1.0);
        // 1.0 + 3*2^-11 is halfway between (1 + 2^-10) and (1 + 2^-9); RNE picks
        // the even mantissa which is 1 + 2^-9.
        let halfway_up = 1.0 + 3.0 * 2.0f32.powi(-11);
        assert_eq!(F16::from_f32(halfway_up).to_f32(), 1.0 + 2.0f32.powi(-9));
    }

    #[test]
    fn significand_and_exponent_decomposition_reconstructs_value() {
        for &x in &[1.0f32, -1.5, 0.375, 100.0, 0.00074, -65504.0] {
            let h = F16::from_f32(x);
            let v = (if h.is_sign_negative() { -1.0 } else { 1.0 })
                * h.significand11() as f32
                * 2.0f32.powi(h.unbiased_exponent() - 10);
            assert_eq!(v, h.to_f32(), "decomposition of {x}");
        }
    }

    #[test]
    fn monotonic_rounding_error_is_bounded() {
        // Relative rounding error of normal-range values is at most 2^-11.
        let mut x = 0.001f32;
        while x < 60000.0 {
            let r = round_to_f16(x);
            assert!(
                ((r - x) / x).abs() <= 2.0f32.powi(-11) + 1e-9,
                "x={x} r={r}"
            );
            x *= 1.37;
        }
    }
}
