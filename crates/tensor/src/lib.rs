//! Tensor and numeric substrate for the BitMoD reproduction.
//!
//! This crate provides the low-level building blocks that every other crate in
//! the workspace relies on:
//!
//! * [`Matrix`] — a small, dependency-free, row-major `f32` matrix used to hold
//!   weight tensors, activations and calibration data.
//! * [`stats`] — statistics used throughout the paper's analysis (absolute
//!   maximum, range, mean-square error, signal-to-quantization-noise ratio,
//!   per-group views).
//! * [`rng`] — deterministic random number generation (ChaCha-based) with
//!   Gaussian and Student-t samplers implemented from scratch.
//! * [`synthetic`] — synthetic LLM weight/activation generation.  Real
//!   HuggingFace checkpoints are not available in this environment, so weight
//!   tensors are drawn from per-channel Gaussian/Student-t mixtures with
//!   injected asymmetric outliers matching the distributional characteristics
//!   the paper relies on (see `DESIGN.md`).
//! * [`mod@f16`] — a software half-precision (`binary16`) type with
//!   round-to-nearest-even conversion, used to model the FP16 activation path
//!   of the BitMoD processing element exactly.
//!
//! # Example
//!
//! ```
//! use bitmod_tensor::{Matrix, rng::SeededRng, synthetic::WeightProfile};
//!
//! let mut rng = SeededRng::new(42);
//! let profile = WeightProfile::llama_like();
//! let w = profile.sample_matrix(64, 256, &mut rng);
//! assert_eq!(w.rows(), 64);
//! assert_eq!(w.cols(), 256);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod alloc_probe;
pub mod f16;
pub mod matrix;
pub mod rng;
pub mod stats;
pub mod synthetic;

pub use f16::F16;
pub use matrix::{active_simd_backend, Matrix};
pub use rng::SeededRng;
