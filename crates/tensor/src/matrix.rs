//! A minimal row-major `f32` matrix.
//!
//! The BitMoD reproduction only needs dense 2-D tensors (LLM linear-layer
//! weights, activations, calibration batches), so this type intentionally
//! stays small: contiguous storage, row/column accessors, matrix
//! multiplication, transposition and per-group views along the channel
//! dimension.

use serde::{Deserialize, Serialize};
use std::cell::RefCell;
use std::fmt;
use std::sync::OnceLock;

/// Panel width of the fused [`Matrix::matmul_nt`] kernel: how many rows of
/// the transposed operand are interleaved and advanced together.  Eight
/// independent `f32` accumulators fill a 256-bit SIMD register and hide
/// FMA latency without spilling.
const NT_PANEL: usize = 8;

thread_local! {
    /// Per-thread lane-major panel scratch shared by every `matmul_nt`
    /// kernel invocation on this thread.  Grown monotonically to the largest
    /// `k × NT_PANEL` any call needs and never shrunk, so steady-state
    /// multiplications perform zero heap allocations.
    static PANEL_SCRATCH: RefCell<Vec<f32>> = const { RefCell::new(Vec::new()) };
}

/// Detaches this thread's panel scratch, grown to at least `len` elements.
/// Pair with [`return_panel`].  The buffer's contents are unspecified on
/// entry; every kernel fully overwrites the `k × nb` prefix it reads before
/// reading it back, so reuse cannot change results.
///
/// Take/put-back (instead of holding a `RefCell` borrow across the kernel)
/// keeps the hot loop free of borrow flags and sidesteps closure-inherited
/// `#[target_feature]` subtleties in the SIMD kernels.
fn take_panel(len: usize) -> Vec<f32> {
    let mut buf = PANEL_SCRATCH.with(|cell| std::mem::take(&mut *cell.borrow_mut()));
    if buf.len() < len {
        buf.resize(len, 0.0);
    }
    buf
}

/// Returns a buffer obtained from [`take_panel`] to this thread's scratch
/// slot, keeping whichever buffer is larger (growth is monotonic).
fn return_panel(buf: Vec<f32>) {
    PANEL_SCRATCH.with(|cell| {
        let mut slot = cell.borrow_mut();
        if buf.len() > slot.len() {
            *slot = buf;
        }
    });
}

/// Which kernel implementation [`Matrix::matmul_nt`] dispatches to.
///
/// Detected once per process (see [`simd_backend`]); the scalar kernel is
/// always compiled and is the fallback on every architecture.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum SimdBackend {
    /// Portable scalar panel kernel — the reference implementation.
    Scalar,
    /// AVX2 256-bit kernel (x86_64, runtime-detected).
    #[cfg(target_arch = "x86_64")]
    Avx2,
    /// NEON 128-bit kernel (aarch64, runtime-detected).
    #[cfg(target_arch = "aarch64")]
    Neon,
}

/// `BITMOD_NO_SIMD` escape hatch: any non-empty value other than `"0"`
/// forces the scalar kernel, independent of what the CPU supports.
fn simd_disabled_by_env() -> bool {
    match std::env::var("BITMOD_NO_SIMD") {
        Ok(v) => !v.is_empty() && v != "0",
        Err(_) => false,
    }
}

/// Runtime kernel selection, decided once per process and cached.
///
/// The environment variable is read on first use, so `BITMOD_NO_SIMD` must
/// be set before the first `matmul_nt` call to take effect.
fn simd_backend() -> SimdBackend {
    static BACKEND: OnceLock<SimdBackend> = OnceLock::new();
    *BACKEND.get_or_init(|| {
        if simd_disabled_by_env() {
            return SimdBackend::Scalar;
        }
        #[cfg(target_arch = "x86_64")]
        {
            if std::arch::is_x86_feature_detected!("avx2") {
                return SimdBackend::Avx2;
            }
        }
        #[cfg(target_arch = "aarch64")]
        {
            if std::arch::is_aarch64_feature_detected!("neon") {
                return SimdBackend::Neon;
            }
        }
        SimdBackend::Scalar
    })
}

/// Human-readable name of the matmul kernel the process dispatches to:
/// `"avx2"`, `"neon"` or `"scalar"`.
///
/// Useful for logging benchmark provenance.  The answer is fixed after the
/// first matrix multiplication (runtime detection is cached), and honours
/// the `BITMOD_NO_SIMD` escape hatch.
pub fn active_simd_backend() -> &'static str {
    match simd_backend() {
        SimdBackend::Scalar => "scalar",
        #[cfg(target_arch = "x86_64")]
        SimdBackend::Avx2 => "avx2",
        #[cfg(target_arch = "aarch64")]
        SimdBackend::Neon => "neon",
    }
}

/// A dense, row-major matrix of `f32` values.
///
/// Rows correspond to output channels of a weight tensor (`K` in the paper's
/// notation) and columns to the channel size (`D`).  Per-group quantization
/// slices each row into contiguous chunks of `group_size` columns.
///
/// # Example
///
/// ```
/// use bitmod_tensor::Matrix;
///
/// let m = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]);
/// assert_eq!(m.get(1, 0), 3.0);
/// assert_eq!(m.row(0), &[1.0, 2.0]);
/// ```
#[derive(Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f32>,
}

impl fmt::Debug for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Matrix")
            .field("rows", &self.rows)
            .field("cols", &self.cols)
            .field("data_len", &self.data.len())
            .finish()
    }
}

impl Matrix {
    /// Creates a matrix of the given shape filled with zeros.
    ///
    /// # Panics
    ///
    /// Panics if `rows * cols` overflows `usize`.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        let len = rows
            .checked_mul(cols)
            .expect("matrix dimensions overflow usize");
        Self {
            rows,
            cols,
            data: vec![0.0; len],
        }
    }

    /// Creates a matrix of the given shape filled with `value`.
    pub fn filled(rows: usize, cols: usize, value: f32) -> Self {
        let mut m = Self::zeros(rows, cols);
        m.data.fill(value);
        m
    }

    /// Reshapes the matrix in place to `rows × cols`, discarding its
    /// contents and zero-filling the new shape.  The existing heap buffer is
    /// reused whenever its capacity suffices, so repeatedly resetting a
    /// matrix to shapes no larger than its high-water mark performs no heap
    /// allocation — the building block of the workspace's scratch arenas.
    ///
    /// # Panics
    ///
    /// Panics if `rows * cols` overflows `usize`.
    pub fn reset(&mut self, rows: usize, cols: usize) {
        let len = rows
            .checked_mul(cols)
            .expect("matrix dimensions overflow usize");
        self.rows = rows;
        self.cols = cols;
        self.data.clear();
        self.data.resize(len, 0.0);
    }

    /// Creates a matrix from a flat row-major buffer.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f32>) -> Self {
        assert_eq!(
            data.len(),
            rows * cols,
            "buffer length {} does not match shape {}x{}",
            data.len(),
            rows,
            cols
        );
        Self { rows, cols, data }
    }

    /// Creates a matrix from a slice of equally sized rows.
    ///
    /// # Panics
    ///
    /// Panics if the rows have different lengths or if `rows` is empty.
    pub fn from_rows(rows: &[Vec<f32>]) -> Self {
        assert!(!rows.is_empty(), "cannot build a matrix from zero rows");
        let cols = rows[0].len();
        let mut data = Vec::with_capacity(rows.len() * cols);
        for (i, r) in rows.iter().enumerate() {
            assert_eq!(
                r.len(),
                cols,
                "row {i} has length {} expected {cols}",
                r.len()
            );
            data.extend_from_slice(r);
        }
        Self {
            rows: rows.len(),
            cols,
            data,
        }
    }

    /// Number of rows (output channels).
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns (channel size).
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Total number of elements.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Returns `true` if the matrix holds no elements.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Borrow the underlying row-major buffer.
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// Mutably borrow the underlying row-major buffer.
    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consumes the matrix and returns the underlying buffer.
    pub fn into_vec(self) -> Vec<f32> {
        self.data
    }

    /// Returns the element at (`r`, `c`).
    ///
    /// # Panics
    ///
    /// Panics if the indices are out of bounds.
    #[inline]
    pub fn get(&self, r: usize, c: usize) -> f32 {
        assert!(
            r < self.rows && c < self.cols,
            "index ({r},{c}) out of bounds"
        );
        self.data[r * self.cols + c]
    }

    /// Sets the element at (`r`, `c`).
    ///
    /// # Panics
    ///
    /// Panics if the indices are out of bounds.
    #[inline]
    pub fn set(&mut self, r: usize, c: usize, v: f32) {
        assert!(
            r < self.rows && c < self.cols,
            "index ({r},{c}) out of bounds"
        );
        self.data[r * self.cols + c] = v;
    }

    /// Borrow row `r` as a slice.
    ///
    /// # Panics
    ///
    /// Panics if `r >= rows`.
    #[inline]
    pub fn row(&self, r: usize) -> &[f32] {
        assert!(r < self.rows, "row {r} out of bounds ({} rows)", self.rows);
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Mutably borrow row `r` as a slice.
    ///
    /// # Panics
    ///
    /// Panics if `r >= rows`.
    #[inline]
    pub fn row_mut(&mut self, r: usize) -> &mut [f32] {
        assert!(r < self.rows, "row {r} out of bounds ({} rows)", self.rows);
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Copies column `c` into a new vector.
    ///
    /// # Panics
    ///
    /// Panics if `c >= cols`.
    pub fn col(&self, c: usize) -> Vec<f32> {
        assert!(
            c < self.cols,
            "column {c} out of bounds ({} cols)",
            self.cols
        );
        (0..self.rows).map(|r| self.get(r, c)).collect()
    }

    /// Iterator over rows as slices.
    pub fn iter_rows(&self) -> impl Iterator<Item = &[f32]> {
        self.data.chunks_exact(self.cols.max(1))
    }

    /// Iterator over contiguous per-group chunks of every row.
    ///
    /// Each item is `(row_index, group_index, group_slice)`.  The last group
    /// of a row may be shorter than `group_size` if the channel size is not a
    /// multiple of the group size, mirroring how per-group quantization
    /// handles ragged tails.
    ///
    /// # Panics
    ///
    /// Panics if `group_size == 0`.
    pub fn iter_groups(&self, group_size: usize) -> impl Iterator<Item = (usize, usize, &[f32])> {
        assert!(group_size > 0, "group size must be non-zero");
        self.data
            .chunks_exact(self.cols.max(1))
            .enumerate()
            .flat_map(move |(r, row)| {
                row.chunks(group_size)
                    .enumerate()
                    .map(move |(g, chunk)| (r, g, chunk))
            })
    }

    /// Number of groups per row for a given group size (ceiling division).
    ///
    /// # Panics
    ///
    /// Panics if `group_size == 0`.
    pub fn groups_per_row(&self, group_size: usize) -> usize {
        assert!(group_size > 0, "group size must be non-zero");
        self.cols.div_ceil(group_size)
    }

    /// Returns a copy of the first `k` rows (the row-major prefix).
    ///
    /// # Panics
    ///
    /// Panics if `k` is zero or exceeds the row count.
    pub fn top_rows(&self, k: usize) -> Matrix {
        assert!(
            k > 0 && k <= self.rows,
            "top_rows: k = {k} out of range for a {}-row matrix",
            self.rows
        );
        Matrix::from_vec(k, self.cols, self.data[..k * self.cols].to_vec())
    }

    /// Returns the transpose of this matrix.
    pub fn transposed(&self) -> Matrix {
        let mut t = Matrix::zeros(self.cols, self.rows);
        for r in 0..self.rows {
            for c in 0..self.cols {
                t.data[c * self.rows + r] = self.data[r * self.cols + c];
            }
        }
        t
    }

    /// Matrix multiplication `self (m×k) * rhs (k×n) -> (m×n)`.
    ///
    /// # Panics
    ///
    /// Panics if the inner dimensions do not match.
    pub fn matmul(&self, rhs: &Matrix) -> Matrix {
        assert_eq!(
            self.cols, rhs.rows,
            "matmul shape mismatch: {}x{} * {}x{}",
            self.rows, self.cols, rhs.rows, rhs.cols
        );
        let mut out = Matrix::zeros(self.rows, rhs.cols);
        for i in 0..self.rows {
            for k in 0..self.cols {
                let a = self.data[i * self.cols + k];
                if a == 0.0 {
                    continue;
                }
                let row_rhs = &rhs.data[k * rhs.cols..(k + 1) * rhs.cols];
                let row_out = &mut out.data[i * rhs.cols..(i + 1) * rhs.cols];
                for (o, &b) in row_out.iter_mut().zip(row_rhs.iter()) {
                    *o += a * b;
                }
            }
        }
        out
    }

    /// Fused multiply against a transposed right-hand side:
    /// `self (m×k) * rhsᵀ where rhs is (n×k) -> (m×n)`.
    ///
    /// Produces the same result as `self.matmul(&rhs.transposed())` without
    /// ever materializing an `n×k` transposed copy.  The kernel tiles `rhs`
    /// into eight-row *panels* (`NT_PANEL`) interleaved into one small reusable
    /// buffer (`k × NT_PANEL`, L1-resident), so the inner loop reads one
    /// contiguous lane group per `k` step and advances all panel outputs with
    /// independent accumulators — SIMD-friendly across the panel, while each
    /// output element still accumulates its products in ascending-`k` order,
    /// exactly like `matmul`, keeping the two kernels' results equal.
    ///
    /// Weight matrices in this workspace are stored `out_features ×
    /// in_features`, which is exactly the `rhs` layout this kernel wants, so
    /// every projection in a proxy forward pass hits this path with zero
    /// per-call layout shuffling.  Large products split the `self` rows into
    /// contiguous blocks across rayon workers, one panel buffer per block.
    ///
    /// # Panics
    ///
    /// Panics if the inner dimensions (`self.cols` vs `rhs.cols`) differ.
    pub fn matmul_nt(&self, rhs: &Matrix) -> Matrix {
        let mut out = Matrix {
            rows: 0,
            cols: 0,
            data: Vec::new(),
        };
        self.matmul_nt_into(rhs, &mut out);
        out
    }

    /// [`Matrix::matmul_nt`] writing into caller-provided storage.
    ///
    /// `out` is reshaped to `m × n`; its previous contents are discarded and
    /// its heap buffer is reused whenever large enough, so steady-state
    /// callers that keep `out` around perform zero heap allocations.  The
    /// result is bit-identical to `matmul_nt` (which is now a thin wrapper
    /// allocating a fresh `out`).
    ///
    /// # Panics
    ///
    /// Panics if the inner dimensions (`self.cols` vs `rhs.cols`) differ.
    pub fn matmul_nt_into(&self, rhs: &Matrix, out: &mut Matrix) {
        assert_eq!(
            self.cols, rhs.cols,
            "matmul_nt shape mismatch: {}x{} * ({}x{})^T",
            self.rows, self.cols, rhs.rows, rhs.cols
        );
        let (m, n) = (self.rows, rhs.rows);
        out.reset(m, n);
        // Row-block parallelism only when the product is big enough to
        // amortize the scheduler (and the per-block panel re-interleave);
        // small products and nested parallel regions run inline.
        const PAR_MIN_FLOPS: usize = 1 << 21;
        const ROW_BLOCK: usize = 16;
        let par = m > ROW_BLOCK
            && m.saturating_mul(n).saturating_mul(self.cols) >= PAR_MIN_FLOPS
            && rayon::current_num_threads() > 1;
        if par {
            use rayon::prelude::*;
            let block_count = m.div_ceil(ROW_BLOCK);
            let blocks: Vec<Vec<f32>> = (0..block_count)
                .into_par_iter()
                .map(|b| {
                    let lo = b * ROW_BLOCK;
                    let hi = ((b + 1) * ROW_BLOCK).min(m);
                    let a_block = &self.data[lo * self.cols..hi * self.cols];
                    let mut out_block = vec![0.0f32; (hi - lo) * n];
                    Self::matmul_nt_block(a_block, self.cols, rhs, &mut out_block);
                    out_block
                })
                .collect();
            for (b, block) in blocks.into_iter().enumerate() {
                let lo = b * ROW_BLOCK;
                out.data[lo * n..lo * n + block.len()].copy_from_slice(&block);
            }
        } else {
            Self::matmul_nt_block(&self.data, self.cols, rhs, &mut out.data);
        }
    }

    /// Reference `matmul_nt`: always the scalar panel kernel, always
    /// single-threaded, bypassing both the SIMD dispatch and the rayon row
    /// split.  Equivalence tests pin `matmul_nt` bit-identical to this; it is
    /// also what `matmul_nt` itself runs when no SIMD backend is available or
    /// `BITMOD_NO_SIMD` is set.
    ///
    /// # Panics
    ///
    /// Panics if the inner dimensions (`self.cols` vs `rhs.cols`) differ.
    pub fn matmul_nt_scalar(&self, rhs: &Matrix) -> Matrix {
        assert_eq!(
            self.cols, rhs.cols,
            "matmul_nt shape mismatch: {}x{} * ({}x{})^T",
            self.rows, self.cols, rhs.rows, rhs.cols
        );
        let mut out = Matrix::zeros(self.rows, rhs.rows);
        Self::matmul_nt_block_scalar(&self.data, self.cols, rhs, &mut out.data);
        out
    }

    /// Multiplies a block of `a` rows (flat, `k`-wide) against `rhsᵀ` into
    /// `out` (flat, `rhs.rows`-wide rows), dispatching to the SIMD kernel
    /// selected by [`simd_backend`] with the scalar kernel as fallback.
    /// Every implementation produces bit-identical output (see the kernel
    /// comments for why).
    fn matmul_nt_block(a: &[f32], k: usize, rhs: &Matrix, out: &mut [f32]) {
        match simd_backend() {
            #[cfg(target_arch = "x86_64")]
            // SAFETY: dispatched only after `is_x86_feature_detected!("avx2")`.
            SimdBackend::Avx2 => unsafe { Self::matmul_nt_block_avx2(a, k, rhs, out) },
            #[cfg(target_arch = "aarch64")]
            // SAFETY: dispatched only after `is_aarch64_feature_detected!("neon")`.
            SimdBackend::Neon => unsafe { Self::matmul_nt_block_neon(a, k, rhs, out) },
            SimdBackend::Scalar => Self::matmul_nt_block_scalar(a, k, rhs, out),
        }
    }

    /// Scalar panel kernel: for every eight-row (`NT_PANEL`) panel of `rhs`
    /// rows, the panel is interleaved once into a lane-major scratch buffer
    /// and then streamed against every `a` row of the block.  This is the
    /// always-compiled reference the SIMD kernels must match bit for bit.
    fn matmul_nt_block_scalar(a: &[f32], k: usize, rhs: &Matrix, out: &mut [f32]) {
        const NB: usize = NT_PANEL;
        let n = rhs.rows;
        let mut panel = take_panel(k * NB);
        let mut j0 = 0;
        while j0 < n {
            let nb = (n - j0).min(NB);
            // Interleave: panel[i*nb + l] = rhs[j0 + l][i].  One strided pass
            // per panel, reused by every row of the block.
            for l in 0..nb {
                let b_row = rhs.row(j0 + l);
                for (i, &v) in b_row.iter().enumerate() {
                    panel[i * nb + l] = v;
                }
            }
            for (a_row, out_row) in a.chunks_exact(k).zip(out.chunks_exact_mut(n)) {
                let out_lanes = &mut out_row[j0..j0 + nb];
                if nb == NB {
                    // Full panel: fixed-width lane loop the compiler can
                    // vectorize; each lane's accumulator still sums its
                    // products in ascending-k order.
                    let mut acc = [0.0f32; NB];
                    for (&ai, lanes) in a_row.iter().zip(panel.chunks_exact(NB)) {
                        for (l, acc_l) in acc.iter_mut().enumerate() {
                            *acc_l += ai * lanes[l];
                        }
                    }
                    out_lanes.copy_from_slice(&acc);
                } else {
                    // Ragged tail panel (fewer than NB lanes).
                    let mut acc = [0.0f32; NB];
                    for (&ai, lanes) in a_row.iter().zip(panel.chunks_exact(nb)) {
                        for l in 0..nb {
                            acc[l] += ai * lanes[l];
                        }
                    }
                    out_lanes.copy_from_slice(&acc[..nb]);
                }
            }
            j0 += nb;
        }
        return_panel(panel);
    }

    /// AVX2 panel kernel.  Bit-identical to [`Matrix::matmul_nt_block_scalar`]:
    ///
    /// * The panel scratch is already interleaved lane-major, so one
    ///   `_mm256_loadu_ps` per `k` step reads the same eight lanes the scalar
    ///   kernel walks with its fixed-width array loop.
    /// * Each output lane keeps a single accumulator fed in ascending-`k`
    ///   order with separate `_mm256_mul_ps` + `_mm256_add_ps` — **not**
    ///   `_mm256_fmadd_ps`, whose skipped intermediate rounding would break
    ///   bit-identity.  Vector lanes are independent, so an 8-wide mul/add is
    ///   IEEE-identical to eight scalar mul/adds for every non-NaN result
    ///   (including ±∞ propagation and signed zeros, which x86
    ///   `mulps`/`addps` share with `mulss`/`addss`).  NaN *payloads* are the
    ///   one exception: IEEE leaves them unspecified and the compiler may
    ///   commute a scalar mul/add while hardware picks the first operand's
    ///   payload, so NaN outputs match NaN-for-NaN, not bit-for-bit.
    /// * ILP comes from register-blocking four `a` rows (four independent
    ///   accumulator vectors), never from splitting one row's `k` loop into
    ///   multiple partial sums, which would reassociate the reduction.
    ///
    /// Ragged tail panels (fewer than eight lanes) reuse the scalar lane loop.
    ///
    /// # Safety
    ///
    /// Caller must ensure the CPU supports AVX2.
    #[cfg(target_arch = "x86_64")]
    #[target_feature(enable = "avx2")]
    unsafe fn matmul_nt_block_avx2(a: &[f32], k: usize, rhs: &Matrix, out: &mut [f32]) {
        use std::arch::x86_64::*;
        const NB: usize = NT_PANEL;
        let n = rhs.rows;
        if k == 0 || n == 0 {
            // Degenerate shapes take the scalar path so panic behavior (from
            // zero-size `chunks_exact`) stays identical.
            return Self::matmul_nt_block_scalar(a, k, rhs, out);
        }
        let m = a.len() / k;
        let mut panel = take_panel(k * NB);
        let mut j0 = 0;
        while j0 < n {
            let nb = (n - j0).min(NB);
            for l in 0..nb {
                let b_row = rhs.row(j0 + l);
                for (i, &v) in b_row.iter().enumerate() {
                    panel[i * nb + l] = v;
                }
            }
            if nb == NB {
                let p = panel.as_ptr();
                let mut r = 0;
                while r + 4 <= m {
                    let a0 = a.as_ptr().add(r * k);
                    let a1 = a0.add(k);
                    let a2 = a1.add(k);
                    let a3 = a2.add(k);
                    let mut acc0 = _mm256_setzero_ps();
                    let mut acc1 = _mm256_setzero_ps();
                    let mut acc2 = _mm256_setzero_ps();
                    let mut acc3 = _mm256_setzero_ps();
                    for i in 0..k {
                        let lanes = _mm256_loadu_ps(p.add(i * NB));
                        acc0 =
                            _mm256_add_ps(acc0, _mm256_mul_ps(_mm256_set1_ps(*a0.add(i)), lanes));
                        acc1 =
                            _mm256_add_ps(acc1, _mm256_mul_ps(_mm256_set1_ps(*a1.add(i)), lanes));
                        acc2 =
                            _mm256_add_ps(acc2, _mm256_mul_ps(_mm256_set1_ps(*a2.add(i)), lanes));
                        acc3 =
                            _mm256_add_ps(acc3, _mm256_mul_ps(_mm256_set1_ps(*a3.add(i)), lanes));
                    }
                    let o = out.as_mut_ptr().add(r * n + j0);
                    _mm256_storeu_ps(o, acc0);
                    _mm256_storeu_ps(o.add(n), acc1);
                    _mm256_storeu_ps(o.add(2 * n), acc2);
                    _mm256_storeu_ps(o.add(3 * n), acc3);
                    r += 4;
                }
                while r < m {
                    let ar = a.as_ptr().add(r * k);
                    let mut acc = _mm256_setzero_ps();
                    for i in 0..k {
                        let lanes = _mm256_loadu_ps(p.add(i * NB));
                        acc = _mm256_add_ps(acc, _mm256_mul_ps(_mm256_set1_ps(*ar.add(i)), lanes));
                    }
                    _mm256_storeu_ps(out.as_mut_ptr().add(r * n + j0), acc);
                    r += 1;
                }
            } else {
                // Ragged tail panel: identical to the scalar kernel.
                for (a_row, out_row) in a.chunks_exact(k).zip(out.chunks_exact_mut(n)) {
                    let mut acc = [0.0f32; NB];
                    for (&ai, lanes) in a_row.iter().zip(panel.chunks_exact(nb)) {
                        for l in 0..nb {
                            acc[l] += ai * lanes[l];
                        }
                    }
                    out_row[j0..j0 + nb].copy_from_slice(&acc[..nb]);
                }
            }
            j0 += nb;
        }
        return_panel(panel);
    }

    /// NEON panel kernel.  Same bit-identity reasoning as the AVX2 kernel:
    /// the eight panel lanes become two `float32x4_t` vectors per `k` step,
    /// accumulated with separate `vmulq_f32` + `vaddq_f32` (explicitly not
    /// the fused `vfmaq_f32`), register-blocked across four `a` rows for ILP.
    ///
    /// # Safety
    ///
    /// Caller must ensure the CPU supports NEON.
    #[cfg(target_arch = "aarch64")]
    #[target_feature(enable = "neon")]
    unsafe fn matmul_nt_block_neon(a: &[f32], k: usize, rhs: &Matrix, out: &mut [f32]) {
        use std::arch::aarch64::*;
        const NB: usize = NT_PANEL;
        let n = rhs.rows;
        if k == 0 || n == 0 {
            return Self::matmul_nt_block_scalar(a, k, rhs, out);
        }
        let m = a.len() / k;
        let mut panel = take_panel(k * NB);
        let mut j0 = 0;
        while j0 < n {
            let nb = (n - j0).min(NB);
            for l in 0..nb {
                let b_row = rhs.row(j0 + l);
                for (i, &v) in b_row.iter().enumerate() {
                    panel[i * nb + l] = v;
                }
            }
            if nb == NB {
                let p = panel.as_ptr();
                let mut r = 0;
                while r + 2 <= m {
                    let a0 = a.as_ptr().add(r * k);
                    let a1 = a0.add(k);
                    let mut acc0lo = vdupq_n_f32(0.0);
                    let mut acc0hi = vdupq_n_f32(0.0);
                    let mut acc1lo = vdupq_n_f32(0.0);
                    let mut acc1hi = vdupq_n_f32(0.0);
                    for i in 0..k {
                        let lo = vld1q_f32(p.add(i * NB));
                        let hi = vld1q_f32(p.add(i * NB + 4));
                        let s0 = vdupq_n_f32(*a0.add(i));
                        let s1 = vdupq_n_f32(*a1.add(i));
                        acc0lo = vaddq_f32(acc0lo, vmulq_f32(s0, lo));
                        acc0hi = vaddq_f32(acc0hi, vmulq_f32(s0, hi));
                        acc1lo = vaddq_f32(acc1lo, vmulq_f32(s1, lo));
                        acc1hi = vaddq_f32(acc1hi, vmulq_f32(s1, hi));
                    }
                    let o = out.as_mut_ptr().add(r * n + j0);
                    vst1q_f32(o, acc0lo);
                    vst1q_f32(o.add(4), acc0hi);
                    vst1q_f32(o.add(n), acc1lo);
                    vst1q_f32(o.add(n + 4), acc1hi);
                    r += 2;
                }
                while r < m {
                    let ar = a.as_ptr().add(r * k);
                    let mut acc_lo = vdupq_n_f32(0.0);
                    let mut acc_hi = vdupq_n_f32(0.0);
                    for i in 0..k {
                        let s = vdupq_n_f32(*ar.add(i));
                        acc_lo = vaddq_f32(acc_lo, vmulq_f32(s, vld1q_f32(p.add(i * NB))));
                        acc_hi = vaddq_f32(acc_hi, vmulq_f32(s, vld1q_f32(p.add(i * NB + 4))));
                    }
                    let o = out.as_mut_ptr().add(r * n + j0);
                    vst1q_f32(o, acc_lo);
                    vst1q_f32(o.add(4), acc_hi);
                    r += 1;
                }
            } else {
                for (a_row, out_row) in a.chunks_exact(k).zip(out.chunks_exact_mut(n)) {
                    let mut acc = [0.0f32; NB];
                    for (&ai, lanes) in a_row.iter().zip(panel.chunks_exact(nb)) {
                        for l in 0..nb {
                            acc[l] += ai * lanes[l];
                        }
                    }
                    out_row[j0..j0 + nb].copy_from_slice(&acc[..nb]);
                }
            }
            j0 += nb;
        }
        return_panel(panel);
    }

    /// Matrix–vector product `self (m×k) * v (k) -> (m)`.
    ///
    /// # Panics
    ///
    /// Panics if `v.len() != cols`.
    pub fn matvec(&self, v: &[f32]) -> Vec<f32> {
        let mut out = Vec::new();
        self.matvec_into(v, &mut out);
        out
    }

    /// [`Matrix::matvec`] writing into caller-provided storage.  `out` is
    /// cleared and refilled; its heap buffer is reused whenever large
    /// enough.  Bit-identical to `matvec` (now a thin allocating wrapper).
    ///
    /// # Panics
    ///
    /// Panics if `v.len() != cols`.
    pub fn matvec_into(&self, v: &[f32], out: &mut Vec<f32>) {
        assert_eq!(v.len(), self.cols, "matvec shape mismatch");
        out.clear();
        out.extend(
            self.iter_rows()
                .map(|row| row.iter().zip(v).map(|(a, b)| a * b).sum::<f32>()),
        );
    }

    /// Element-wise map into a new matrix.
    pub fn map(&self, mut f: impl FnMut(f32) -> f32) -> Matrix {
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(|&x| f(x)).collect(),
        }
    }

    /// Element-wise in-place map.
    pub fn map_inplace(&mut self, mut f: impl FnMut(f32) -> f32) {
        for x in &mut self.data {
            *x = f(*x);
        }
    }

    /// Scales every element of column `c` by `s`.
    ///
    /// # Panics
    ///
    /// Panics if `c >= cols`.
    pub fn scale_col(&mut self, c: usize, s: f32) {
        assert!(c < self.cols, "column {c} out of bounds");
        for r in 0..self.rows {
            self.data[r * self.cols + c] *= s;
        }
    }

    /// Scales every element of row `r` by `s`.
    ///
    /// # Panics
    ///
    /// Panics if `r >= rows`.
    pub fn scale_row(&mut self, r: usize, s: f32) {
        for x in self.row_mut(r) {
            *x *= s;
        }
    }

    /// Element-wise difference `self - rhs`.
    ///
    /// # Panics
    ///
    /// Panics if the shapes differ.
    pub fn sub(&self, rhs: &Matrix) -> Matrix {
        assert_eq!(self.rows, rhs.rows, "row mismatch in sub");
        assert_eq!(self.cols, rhs.cols, "col mismatch in sub");
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self
                .data
                .iter()
                .zip(&rhs.data)
                .map(|(a, b)| a - b)
                .collect(),
        }
    }

    /// Frobenius norm of the matrix.
    pub fn frobenius_norm(&self) -> f64 {
        self.data
            .iter()
            .map(|&x| (x as f64) * (x as f64))
            .sum::<f64>()
            .sqrt()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_has_expected_shape_and_content() {
        let m = Matrix::zeros(3, 4);
        assert_eq!(m.rows(), 3);
        assert_eq!(m.cols(), 4);
        assert_eq!(m.len(), 12);
        assert!(m.as_slice().iter().all(|&x| x == 0.0));
    }

    #[test]
    fn filled_sets_every_element() {
        let m = Matrix::filled(2, 2, 1.5);
        assert!(m.as_slice().iter().all(|&x| x == 1.5));
    }

    #[test]
    fn get_set_roundtrip() {
        let mut m = Matrix::zeros(2, 3);
        m.set(1, 2, 7.0);
        assert_eq!(m.get(1, 2), 7.0);
        assert_eq!(m.get(0, 0), 0.0);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn get_out_of_bounds_panics() {
        let m = Matrix::zeros(2, 2);
        let _ = m.get(2, 0);
    }

    #[test]
    #[should_panic(expected = "does not match shape")]
    fn from_vec_wrong_len_panics() {
        let _ = Matrix::from_vec(2, 2, vec![1.0, 2.0, 3.0]);
    }

    #[test]
    fn from_rows_builds_row_major() {
        let m = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]);
        assert_eq!(m.as_slice(), &[1.0, 2.0, 3.0, 4.0]);
        assert_eq!(m.row(1), &[3.0, 4.0]);
        assert_eq!(m.col(1), vec![2.0, 4.0]);
    }

    #[test]
    fn transpose_is_involutive() {
        let m = Matrix::from_rows(&[vec![1.0, 2.0, 3.0], vec![4.0, 5.0, 6.0]]);
        let t = m.transposed();
        assert_eq!(t.rows(), 3);
        assert_eq!(t.cols(), 2);
        assert_eq!(t.get(2, 1), 6.0);
        assert_eq!(t.transposed(), m);
    }

    #[test]
    fn matmul_matches_manual_result() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]);
        let b = Matrix::from_rows(&[vec![5.0, 6.0], vec![7.0, 8.0]]);
        let c = a.matmul(&b);
        assert_eq!(c.as_slice(), &[19.0, 22.0, 43.0, 50.0]);
    }

    #[test]
    fn matmul_identity_is_noop() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]);
        let id = Matrix::from_rows(&[vec![1.0, 0.0], vec![0.0, 1.0]]);
        assert_eq!(a.matmul(&id), a);
    }

    #[test]
    fn matvec_matches_matmul() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0, 3.0], vec![4.0, 5.0, 6.0]]);
        let v = vec![1.0, 0.5, -1.0];
        let out = a.matvec(&v);
        assert_eq!(out, vec![1.0 + 1.0 - 3.0, 4.0 + 2.5 - 6.0]);
    }

    #[test]
    fn iter_groups_covers_all_elements_with_ragged_tail() {
        let m = Matrix::from_rows(&[vec![1.0, 2.0, 3.0, 4.0, 5.0]]);
        let groups: Vec<_> = m.iter_groups(2).collect();
        assert_eq!(groups.len(), 3);
        assert_eq!(groups[0].2, &[1.0, 2.0]);
        assert_eq!(groups[2].2, &[5.0]);
        assert_eq!(m.groups_per_row(2), 3);
    }

    #[test]
    fn scale_col_and_row() {
        let mut m = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]);
        m.scale_col(0, 2.0);
        assert_eq!(m.as_slice(), &[2.0, 2.0, 6.0, 4.0]);
        m.scale_row(1, 0.5);
        assert_eq!(m.as_slice(), &[2.0, 2.0, 3.0, 2.0]);
    }

    #[test]
    fn sub_and_frobenius() {
        let a = Matrix::from_rows(&[vec![3.0, 4.0]]);
        let b = Matrix::zeros(1, 2);
        let d = a.sub(&b);
        assert!((d.frobenius_norm() - 5.0).abs() < 1e-9);
    }

    #[test]
    fn map_applies_function() {
        let a = Matrix::from_rows(&[vec![1.0, -2.0]]);
        let b = a.map(f32::abs);
        assert_eq!(b.as_slice(), &[1.0, 2.0]);
    }

    #[test]
    fn simd_backend_name_is_reported() {
        // Whatever the host supports, the name must be one of the known
        // kernels and stable across calls (detection is cached).
        let name = active_simd_backend();
        assert!(matches!(name, "scalar" | "avx2" | "neon"));
        assert_eq!(name, active_simd_backend());
    }

    /// Deterministic but irregular test values (no RNG dependency here).
    fn lcg_matrix(rows: usize, cols: usize, mut state: u32) -> Matrix {
        let mut m = Matrix::zeros(rows, cols);
        for v in m.as_mut_slice() {
            state = state.wrapping_mul(1664525).wrapping_add(1013904223);
            *v = ((state >> 8) as f32 / (1 << 24) as f32) * 4.0 - 2.0;
        }
        m
    }

    #[test]
    fn reset_reuses_capacity_and_zero_fills() {
        let mut m = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]);
        let cap = m.data.capacity();
        m.reset(1, 3);
        assert_eq!((m.rows(), m.cols()), (1, 3));
        assert!(m.as_slice().iter().all(|&x| x == 0.0));
        assert_eq!(m.data.capacity(), cap, "smaller shape must not reallocate");
    }

    #[test]
    fn matmul_nt_into_matches_with_reused_and_oversized_out() {
        // One `out` buffer threaded through ascending and descending shapes:
        // the reshape must discard stale contents and reuse capacity.
        let mut out = Matrix::zeros(64, 64);
        for &(m, k, n) in &[(4, 8, 8), (17, 5, 23), (1, 3, 9), (33, 12, 40)] {
            let a = lcg_matrix(m, k, (m * 17 + k + n) as u32);
            let b = lcg_matrix(n, k, (m + k * 5 + n) as u32);
            a.matmul_nt_into(&b, &mut out);
            let reference = a.matmul_nt_scalar(&b);
            assert_eq!((out.rows(), out.cols()), (m, n));
            for (x, y) in out.as_slice().iter().zip(reference.as_slice()) {
                assert_eq!(x.to_bits(), y.to_bits(), "shape ({m},{k},{n})");
            }
        }
    }

    #[test]
    fn matvec_into_matches_matvec() {
        let a = lcg_matrix(7, 13, 99);
        let v: Vec<f32> = a.row(3).to_vec();
        let mut out = vec![f32::NAN; 32]; // stale, oversized
        a.matvec_into(&v, &mut out);
        assert_eq!(out, a.matvec(&v));
    }

    #[test]
    fn matmul_nt_dispatch_matches_scalar_reference() {
        // Covers full panels, ragged tails, the single-row remainder of the
        // 4-row register blocking, and m > ROW_BLOCK in one sweep.
        for &(m, k, n) in &[
            (1, 1, 1),
            (1, 3, 9),
            (4, 8, 8),
            (5, 7, 8),
            (6, 16, 11),
            (17, 5, 23),
            (33, 12, 40),
        ] {
            let a = lcg_matrix(m, k, (m * 31 + k * 7 + n) as u32);
            let b = lcg_matrix(n, k, (m + k + n * 13) as u32);
            let fast = a.matmul_nt(&b);
            let reference = a.matmul_nt_scalar(&b);
            for (x, y) in fast.as_slice().iter().zip(reference.as_slice()) {
                assert_eq!(x.to_bits(), y.to_bits(), "shape ({m},{k},{n})");
            }
        }
    }
}
