//! A minimal row-major `f32` matrix.
//!
//! The BitMoD reproduction only needs dense 2-D tensors (LLM linear-layer
//! weights, activations, calibration batches), so this type intentionally
//! stays small: contiguous storage, row/column accessors, matrix
//! multiplication, transposition and per-group views along the channel
//! dimension.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Panel width of the fused [`Matrix::matmul_nt`] kernel: how many rows of
/// the transposed operand are interleaved and advanced together.  Eight
/// independent `f32` accumulators fill a 256-bit SIMD register and hide
/// FMA latency without spilling.
const NT_PANEL: usize = 8;

/// A dense, row-major matrix of `f32` values.
///
/// Rows correspond to output channels of a weight tensor (`K` in the paper's
/// notation) and columns to the channel size (`D`).  Per-group quantization
/// slices each row into contiguous chunks of `group_size` columns.
///
/// # Example
///
/// ```
/// use bitmod_tensor::Matrix;
///
/// let m = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]);
/// assert_eq!(m.get(1, 0), 3.0);
/// assert_eq!(m.row(0), &[1.0, 2.0]);
/// ```
#[derive(Clone, PartialEq, Serialize, Deserialize)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f32>,
}

impl fmt::Debug for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Matrix")
            .field("rows", &self.rows)
            .field("cols", &self.cols)
            .field("data_len", &self.data.len())
            .finish()
    }
}

impl Matrix {
    /// Creates a matrix of the given shape filled with zeros.
    ///
    /// # Panics
    ///
    /// Panics if `rows * cols` overflows `usize`.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        let len = rows
            .checked_mul(cols)
            .expect("matrix dimensions overflow usize");
        Self {
            rows,
            cols,
            data: vec![0.0; len],
        }
    }

    /// Creates a matrix of the given shape filled with `value`.
    pub fn filled(rows: usize, cols: usize, value: f32) -> Self {
        let mut m = Self::zeros(rows, cols);
        m.data.fill(value);
        m
    }

    /// Creates a matrix from a flat row-major buffer.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f32>) -> Self {
        assert_eq!(
            data.len(),
            rows * cols,
            "buffer length {} does not match shape {}x{}",
            data.len(),
            rows,
            cols
        );
        Self { rows, cols, data }
    }

    /// Creates a matrix from a slice of equally sized rows.
    ///
    /// # Panics
    ///
    /// Panics if the rows have different lengths or if `rows` is empty.
    pub fn from_rows(rows: &[Vec<f32>]) -> Self {
        assert!(!rows.is_empty(), "cannot build a matrix from zero rows");
        let cols = rows[0].len();
        let mut data = Vec::with_capacity(rows.len() * cols);
        for (i, r) in rows.iter().enumerate() {
            assert_eq!(
                r.len(),
                cols,
                "row {i} has length {} expected {cols}",
                r.len()
            );
            data.extend_from_slice(r);
        }
        Self {
            rows: rows.len(),
            cols,
            data,
        }
    }

    /// Number of rows (output channels).
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns (channel size).
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Total number of elements.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Returns `true` if the matrix holds no elements.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Borrow the underlying row-major buffer.
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// Mutably borrow the underlying row-major buffer.
    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consumes the matrix and returns the underlying buffer.
    pub fn into_vec(self) -> Vec<f32> {
        self.data
    }

    /// Returns the element at (`r`, `c`).
    ///
    /// # Panics
    ///
    /// Panics if the indices are out of bounds.
    #[inline]
    pub fn get(&self, r: usize, c: usize) -> f32 {
        assert!(
            r < self.rows && c < self.cols,
            "index ({r},{c}) out of bounds"
        );
        self.data[r * self.cols + c]
    }

    /// Sets the element at (`r`, `c`).
    ///
    /// # Panics
    ///
    /// Panics if the indices are out of bounds.
    #[inline]
    pub fn set(&mut self, r: usize, c: usize, v: f32) {
        assert!(
            r < self.rows && c < self.cols,
            "index ({r},{c}) out of bounds"
        );
        self.data[r * self.cols + c] = v;
    }

    /// Borrow row `r` as a slice.
    ///
    /// # Panics
    ///
    /// Panics if `r >= rows`.
    #[inline]
    pub fn row(&self, r: usize) -> &[f32] {
        assert!(r < self.rows, "row {r} out of bounds ({} rows)", self.rows);
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Mutably borrow row `r` as a slice.
    ///
    /// # Panics
    ///
    /// Panics if `r >= rows`.
    #[inline]
    pub fn row_mut(&mut self, r: usize) -> &mut [f32] {
        assert!(r < self.rows, "row {r} out of bounds ({} rows)", self.rows);
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Copies column `c` into a new vector.
    ///
    /// # Panics
    ///
    /// Panics if `c >= cols`.
    pub fn col(&self, c: usize) -> Vec<f32> {
        assert!(
            c < self.cols,
            "column {c} out of bounds ({} cols)",
            self.cols
        );
        (0..self.rows).map(|r| self.get(r, c)).collect()
    }

    /// Iterator over rows as slices.
    pub fn iter_rows(&self) -> impl Iterator<Item = &[f32]> {
        self.data.chunks_exact(self.cols.max(1))
    }

    /// Iterator over contiguous per-group chunks of every row.
    ///
    /// Each item is `(row_index, group_index, group_slice)`.  The last group
    /// of a row may be shorter than `group_size` if the channel size is not a
    /// multiple of the group size, mirroring how per-group quantization
    /// handles ragged tails.
    ///
    /// # Panics
    ///
    /// Panics if `group_size == 0`.
    pub fn iter_groups(&self, group_size: usize) -> impl Iterator<Item = (usize, usize, &[f32])> {
        assert!(group_size > 0, "group size must be non-zero");
        self.data
            .chunks_exact(self.cols.max(1))
            .enumerate()
            .flat_map(move |(r, row)| {
                row.chunks(group_size)
                    .enumerate()
                    .map(move |(g, chunk)| (r, g, chunk))
            })
    }

    /// Number of groups per row for a given group size (ceiling division).
    ///
    /// # Panics
    ///
    /// Panics if `group_size == 0`.
    pub fn groups_per_row(&self, group_size: usize) -> usize {
        assert!(group_size > 0, "group size must be non-zero");
        self.cols.div_ceil(group_size)
    }

    /// Returns a copy of the first `k` rows (the row-major prefix).
    ///
    /// # Panics
    ///
    /// Panics if `k` is zero or exceeds the row count.
    pub fn top_rows(&self, k: usize) -> Matrix {
        assert!(
            k > 0 && k <= self.rows,
            "top_rows: k = {k} out of range for a {}-row matrix",
            self.rows
        );
        Matrix::from_vec(k, self.cols, self.data[..k * self.cols].to_vec())
    }

    /// Returns the transpose of this matrix.
    pub fn transposed(&self) -> Matrix {
        let mut t = Matrix::zeros(self.cols, self.rows);
        for r in 0..self.rows {
            for c in 0..self.cols {
                t.data[c * self.rows + r] = self.data[r * self.cols + c];
            }
        }
        t
    }

    /// Matrix multiplication `self (m×k) * rhs (k×n) -> (m×n)`.
    ///
    /// # Panics
    ///
    /// Panics if the inner dimensions do not match.
    pub fn matmul(&self, rhs: &Matrix) -> Matrix {
        assert_eq!(
            self.cols, rhs.rows,
            "matmul shape mismatch: {}x{} * {}x{}",
            self.rows, self.cols, rhs.rows, rhs.cols
        );
        let mut out = Matrix::zeros(self.rows, rhs.cols);
        for i in 0..self.rows {
            for k in 0..self.cols {
                let a = self.data[i * self.cols + k];
                if a == 0.0 {
                    continue;
                }
                let row_rhs = &rhs.data[k * rhs.cols..(k + 1) * rhs.cols];
                let row_out = &mut out.data[i * rhs.cols..(i + 1) * rhs.cols];
                for (o, &b) in row_out.iter_mut().zip(row_rhs.iter()) {
                    *o += a * b;
                }
            }
        }
        out
    }

    /// Fused multiply against a transposed right-hand side:
    /// `self (m×k) * rhsᵀ where rhs is (n×k) -> (m×n)`.
    ///
    /// Produces the same result as `self.matmul(&rhs.transposed())` without
    /// ever materializing an `n×k` transposed copy.  The kernel tiles `rhs`
    /// into eight-row *panels* (`NT_PANEL`) interleaved into one small reusable
    /// buffer (`k × NT_PANEL`, L1-resident), so the inner loop reads one
    /// contiguous lane group per `k` step and advances all panel outputs with
    /// independent accumulators — SIMD-friendly across the panel, while each
    /// output element still accumulates its products in ascending-`k` order,
    /// exactly like `matmul`, keeping the two kernels' results equal.
    ///
    /// Weight matrices in this workspace are stored `out_features ×
    /// in_features`, which is exactly the `rhs` layout this kernel wants, so
    /// every projection in a proxy forward pass hits this path with zero
    /// per-call layout shuffling.  Large products split the `self` rows into
    /// contiguous blocks across rayon workers, one panel buffer per block.
    ///
    /// # Panics
    ///
    /// Panics if the inner dimensions (`self.cols` vs `rhs.cols`) differ.
    pub fn matmul_nt(&self, rhs: &Matrix) -> Matrix {
        assert_eq!(
            self.cols, rhs.cols,
            "matmul_nt shape mismatch: {}x{} * ({}x{})^T",
            self.rows, self.cols, rhs.rows, rhs.cols
        );
        let (m, n) = (self.rows, rhs.rows);
        let mut out = Matrix::zeros(m, n);
        // Row-block parallelism only when the product is big enough to
        // amortize the scheduler (and the per-block panel re-interleave);
        // small products and nested parallel regions run inline.
        const PAR_MIN_FLOPS: usize = 1 << 21;
        const ROW_BLOCK: usize = 16;
        let par = m > ROW_BLOCK
            && m.saturating_mul(n).saturating_mul(self.cols) >= PAR_MIN_FLOPS
            && rayon::current_num_threads() > 1;
        if par {
            use rayon::prelude::*;
            let block_count = m.div_ceil(ROW_BLOCK);
            let blocks: Vec<Vec<f32>> = (0..block_count)
                .into_par_iter()
                .map(|b| {
                    let lo = b * ROW_BLOCK;
                    let hi = ((b + 1) * ROW_BLOCK).min(m);
                    let a_block = &self.data[lo * self.cols..hi * self.cols];
                    let mut out_block = vec![0.0f32; (hi - lo) * n];
                    Self::matmul_nt_block(a_block, self.cols, rhs, &mut out_block);
                    out_block
                })
                .collect();
            for (b, block) in blocks.into_iter().enumerate() {
                let lo = b * ROW_BLOCK;
                out.data[lo * n..lo * n + block.len()].copy_from_slice(&block);
            }
        } else {
            Self::matmul_nt_block(&self.data, self.cols, rhs, &mut out.data);
        }
        out
    }

    /// Multiplies a block of `a` rows (flat, `k`-wide) against `rhsᵀ` into
    /// `out` (flat, `rhs.rows`-wide rows).  For every eight-row (`NT_PANEL`)
    /// panel of `rhs` rows, the panel is interleaved once into a lane-major scratch
    /// buffer and then streamed against every `a` row of the block.
    fn matmul_nt_block(a: &[f32], k: usize, rhs: &Matrix, out: &mut [f32]) {
        const NB: usize = NT_PANEL;
        let n = rhs.rows;
        let mut panel = vec![0.0f32; k * NB];
        let mut j0 = 0;
        while j0 < n {
            let nb = (n - j0).min(NB);
            // Interleave: panel[i*nb + l] = rhs[j0 + l][i].  One strided pass
            // per panel, reused by every row of the block.
            for l in 0..nb {
                let b_row = rhs.row(j0 + l);
                for (i, &v) in b_row.iter().enumerate() {
                    panel[i * nb + l] = v;
                }
            }
            for (a_row, out_row) in a.chunks_exact(k).zip(out.chunks_exact_mut(n)) {
                let out_lanes = &mut out_row[j0..j0 + nb];
                if nb == NB {
                    // Full panel: fixed-width lane loop the compiler can
                    // vectorize; each lane's accumulator still sums its
                    // products in ascending-k order.
                    let mut acc = [0.0f32; NB];
                    for (&ai, lanes) in a_row.iter().zip(panel.chunks_exact(NB)) {
                        for (l, acc_l) in acc.iter_mut().enumerate() {
                            *acc_l += ai * lanes[l];
                        }
                    }
                    out_lanes.copy_from_slice(&acc);
                } else {
                    // Ragged tail panel (fewer than NB lanes).
                    let mut acc = [0.0f32; NB];
                    for (&ai, lanes) in a_row.iter().zip(panel.chunks_exact(nb)) {
                        for l in 0..nb {
                            acc[l] += ai * lanes[l];
                        }
                    }
                    out_lanes.copy_from_slice(&acc[..nb]);
                }
            }
            j0 += nb;
        }
    }

    /// Matrix–vector product `self (m×k) * v (k) -> (m)`.
    ///
    /// # Panics
    ///
    /// Panics if `v.len() != cols`.
    pub fn matvec(&self, v: &[f32]) -> Vec<f32> {
        assert_eq!(v.len(), self.cols, "matvec shape mismatch");
        self.iter_rows()
            .map(|row| row.iter().zip(v).map(|(a, b)| a * b).sum())
            .collect()
    }

    /// Element-wise map into a new matrix.
    pub fn map(&self, mut f: impl FnMut(f32) -> f32) -> Matrix {
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(|&x| f(x)).collect(),
        }
    }

    /// Element-wise in-place map.
    pub fn map_inplace(&mut self, mut f: impl FnMut(f32) -> f32) {
        for x in &mut self.data {
            *x = f(*x);
        }
    }

    /// Scales every element of column `c` by `s`.
    ///
    /// # Panics
    ///
    /// Panics if `c >= cols`.
    pub fn scale_col(&mut self, c: usize, s: f32) {
        assert!(c < self.cols, "column {c} out of bounds");
        for r in 0..self.rows {
            self.data[r * self.cols + c] *= s;
        }
    }

    /// Scales every element of row `r` by `s`.
    ///
    /// # Panics
    ///
    /// Panics if `r >= rows`.
    pub fn scale_row(&mut self, r: usize, s: f32) {
        for x in self.row_mut(r) {
            *x *= s;
        }
    }

    /// Element-wise difference `self - rhs`.
    ///
    /// # Panics
    ///
    /// Panics if the shapes differ.
    pub fn sub(&self, rhs: &Matrix) -> Matrix {
        assert_eq!(self.rows, rhs.rows, "row mismatch in sub");
        assert_eq!(self.cols, rhs.cols, "col mismatch in sub");
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self
                .data
                .iter()
                .zip(&rhs.data)
                .map(|(a, b)| a - b)
                .collect(),
        }
    }

    /// Frobenius norm of the matrix.
    pub fn frobenius_norm(&self) -> f64 {
        self.data
            .iter()
            .map(|&x| (x as f64) * (x as f64))
            .sum::<f64>()
            .sqrt()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_has_expected_shape_and_content() {
        let m = Matrix::zeros(3, 4);
        assert_eq!(m.rows(), 3);
        assert_eq!(m.cols(), 4);
        assert_eq!(m.len(), 12);
        assert!(m.as_slice().iter().all(|&x| x == 0.0));
    }

    #[test]
    fn filled_sets_every_element() {
        let m = Matrix::filled(2, 2, 1.5);
        assert!(m.as_slice().iter().all(|&x| x == 1.5));
    }

    #[test]
    fn get_set_roundtrip() {
        let mut m = Matrix::zeros(2, 3);
        m.set(1, 2, 7.0);
        assert_eq!(m.get(1, 2), 7.0);
        assert_eq!(m.get(0, 0), 0.0);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn get_out_of_bounds_panics() {
        let m = Matrix::zeros(2, 2);
        let _ = m.get(2, 0);
    }

    #[test]
    #[should_panic(expected = "does not match shape")]
    fn from_vec_wrong_len_panics() {
        let _ = Matrix::from_vec(2, 2, vec![1.0, 2.0, 3.0]);
    }

    #[test]
    fn from_rows_builds_row_major() {
        let m = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]);
        assert_eq!(m.as_slice(), &[1.0, 2.0, 3.0, 4.0]);
        assert_eq!(m.row(1), &[3.0, 4.0]);
        assert_eq!(m.col(1), vec![2.0, 4.0]);
    }

    #[test]
    fn transpose_is_involutive() {
        let m = Matrix::from_rows(&[vec![1.0, 2.0, 3.0], vec![4.0, 5.0, 6.0]]);
        let t = m.transposed();
        assert_eq!(t.rows(), 3);
        assert_eq!(t.cols(), 2);
        assert_eq!(t.get(2, 1), 6.0);
        assert_eq!(t.transposed(), m);
    }

    #[test]
    fn matmul_matches_manual_result() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]);
        let b = Matrix::from_rows(&[vec![5.0, 6.0], vec![7.0, 8.0]]);
        let c = a.matmul(&b);
        assert_eq!(c.as_slice(), &[19.0, 22.0, 43.0, 50.0]);
    }

    #[test]
    fn matmul_identity_is_noop() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]);
        let id = Matrix::from_rows(&[vec![1.0, 0.0], vec![0.0, 1.0]]);
        assert_eq!(a.matmul(&id), a);
    }

    #[test]
    fn matvec_matches_matmul() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0, 3.0], vec![4.0, 5.0, 6.0]]);
        let v = vec![1.0, 0.5, -1.0];
        let out = a.matvec(&v);
        assert_eq!(out, vec![1.0 + 1.0 - 3.0, 4.0 + 2.5 - 6.0]);
    }

    #[test]
    fn iter_groups_covers_all_elements_with_ragged_tail() {
        let m = Matrix::from_rows(&[vec![1.0, 2.0, 3.0, 4.0, 5.0]]);
        let groups: Vec<_> = m.iter_groups(2).collect();
        assert_eq!(groups.len(), 3);
        assert_eq!(groups[0].2, &[1.0, 2.0]);
        assert_eq!(groups[2].2, &[5.0]);
        assert_eq!(m.groups_per_row(2), 3);
    }

    #[test]
    fn scale_col_and_row() {
        let mut m = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]);
        m.scale_col(0, 2.0);
        assert_eq!(m.as_slice(), &[2.0, 2.0, 6.0, 4.0]);
        m.scale_row(1, 0.5);
        assert_eq!(m.as_slice(), &[2.0, 2.0, 3.0, 2.0]);
    }

    #[test]
    fn sub_and_frobenius() {
        let a = Matrix::from_rows(&[vec![3.0, 4.0]]);
        let b = Matrix::zeros(1, 2);
        let d = a.sub(&b);
        assert!((d.frobenius_norm() - 5.0).abs() < 1e-9);
    }

    #[test]
    fn map_applies_function() {
        let a = Matrix::from_rows(&[vec![1.0, -2.0]]);
        let b = a.map(f32::abs);
        assert_eq!(b.as_slice(), &[1.0, 2.0]);
    }
}
