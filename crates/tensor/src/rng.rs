//! Deterministic random number generation.
//!
//! All experiments in this reproduction are seeded so that every table and
//! figure regenerates bit-identically.  [`SeededRng`] wraps a ChaCha-8 stream
//! cipher RNG and adds the distribution samplers the synthetic weight
//! generator needs: uniform, Gaussian (Box–Muller) and Student-t (ratio of a
//! normal and a chi-square), none of which require external crates.
//!
//! ```
//! use bitmod_tensor::SeededRng;
//!
//! // Same seed, same stream — the determinism every experiment relies on.
//! let (mut a, mut b) = (SeededRng::new(42), SeededRng::new(42));
//! assert_eq!(a.next_u64(), b.next_u64());
//! assert_eq!(a.below(10), b.below(10));
//! // Forked child streams are independent of the parent's continuation.
//! let mut child = a.fork(1);
//! assert_ne!(child.next_u64(), b.next_u64());
//! ```

/// The ChaCha-8 stream cipher core: 16 words of state producing 16-word
/// keystream blocks.  Self-contained so the tensor crate stays
/// dependency-free (the build environment cannot fetch `rand`).
#[derive(Debug, Clone)]
struct ChaCha8Core {
    /// Constants, 256-bit key, 64-bit block counter, 64-bit nonce.
    state: [u32; 16],
    /// The current keystream block.
    block: [u32; 16],
    /// Next unread word in `block` (16 = exhausted).
    index: usize,
}

impl ChaCha8Core {
    const SIGMA: [u32; 4] = [0x6170_7865, 0x3320_646e, 0x7962_2d32, 0x6b20_6574];

    /// Builds the cipher state from a 256-bit key (the nonce is fixed; every
    /// generator distinguishes itself through the key).
    fn new(key: [u32; 8]) -> Self {
        let mut state = [0u32; 16];
        state[..4].copy_from_slice(&Self::SIGMA);
        state[4..12].copy_from_slice(&key);
        // state[12..14] = block counter, state[14..16] = nonce (zero).
        Self {
            state,
            block: [0; 16],
            index: 16,
        }
    }

    #[inline]
    fn quarter_round(x: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
        x[a] = x[a].wrapping_add(x[b]);
        x[d] = (x[d] ^ x[a]).rotate_left(16);
        x[c] = x[c].wrapping_add(x[d]);
        x[b] = (x[b] ^ x[c]).rotate_left(12);
        x[a] = x[a].wrapping_add(x[b]);
        x[d] = (x[d] ^ x[a]).rotate_left(8);
        x[c] = x[c].wrapping_add(x[d]);
        x[b] = (x[b] ^ x[c]).rotate_left(7);
    }

    /// Generates the next keystream block and advances the counter.
    fn refill(&mut self) {
        let mut x = self.state;
        for _ in 0..4 {
            // A double round: 4 column rounds + 4 diagonal rounds.
            Self::quarter_round(&mut x, 0, 4, 8, 12);
            Self::quarter_round(&mut x, 1, 5, 9, 13);
            Self::quarter_round(&mut x, 2, 6, 10, 14);
            Self::quarter_round(&mut x, 3, 7, 11, 15);
            Self::quarter_round(&mut x, 0, 5, 10, 15);
            Self::quarter_round(&mut x, 1, 6, 11, 12);
            Self::quarter_round(&mut x, 2, 7, 8, 13);
            Self::quarter_round(&mut x, 3, 4, 9, 14);
        }
        for (out, s) in x.iter_mut().zip(self.state.iter()) {
            *out = out.wrapping_add(*s);
        }
        self.block = x;
        self.index = 0;
        // 64-bit block counter in words 12–13.
        let (lo, carry) = self.state[12].overflowing_add(1);
        self.state[12] = lo;
        if carry {
            self.state[13] = self.state[13].wrapping_add(1);
        }
    }

    #[inline]
    fn next_u32(&mut self) -> u32 {
        if self.index >= 16 {
            self.refill();
        }
        let w = self.block[self.index];
        self.index += 1;
        w
    }
}

/// SplitMix64 step, used to expand a 64-bit seed into a 256-bit ChaCha key.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A deterministic random number generator with distribution samplers.
///
/// # Example
///
/// ```
/// use bitmod_tensor::SeededRng;
///
/// let mut a = SeededRng::new(7);
/// let mut b = SeededRng::new(7);
/// assert_eq!(a.normal(0.0, 1.0), b.normal(0.0, 1.0));
/// ```
#[derive(Debug, Clone)]
pub struct SeededRng {
    inner: ChaCha8Core,
    /// Cached second sample from the Box–Muller transform.
    spare_normal: Option<f64>,
}

impl SeededRng {
    /// Creates a new generator from a 64-bit seed.
    pub fn new(seed: u64) -> Self {
        let mut sm = seed;
        let mut key = [0u32; 8];
        for pair in key.chunks_mut(2) {
            let w = splitmix64(&mut sm);
            pair[0] = w as u32;
            pair[1] = (w >> 32) as u32;
        }
        Self {
            inner: ChaCha8Core::new(key),
            spare_normal: None,
        }
    }

    /// The next 32 bits of the underlying ChaCha-8 stream.
    pub fn next_u32(&mut self) -> u32 {
        self.inner.next_u32()
    }

    /// The next 64 bits of the underlying ChaCha-8 stream.
    pub fn next_u64(&mut self) -> u64 {
        let lo = self.inner.next_u32() as u64;
        let hi = self.inner.next_u32() as u64;
        (hi << 32) | lo
    }

    /// Derives an independent child generator.  Useful for giving each weight
    /// tensor or each experiment its own reproducible stream.
    pub fn fork(&mut self, label: u64) -> SeededRng {
        let seed = self.next_u64() ^ label.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        SeededRng::new(seed)
    }

    /// Uniform sample in `[0, 1)` with 53 bits of precision.
    pub fn uniform(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform sample in `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi`.
    pub fn uniform_range(&mut self, lo: f64, hi: f64) -> f64 {
        assert!(lo < hi, "invalid uniform range [{lo}, {hi})");
        lo + (hi - lo) * self.uniform()
    }

    /// Uniform integer in `[0, n)`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn below(&mut self, n: usize) -> usize {
        assert!(n > 0, "cannot sample below zero");
        // Lemire's multiply-shift reduction of a 64-bit draw onto [0, n).
        ((self.next_u64() as u128 * n as u128) >> 64) as usize
    }

    /// Bernoulli sample with probability `p` of returning `true`.
    pub fn bernoulli(&mut self, p: f64) -> bool {
        self.uniform() < p
    }

    /// Standard normal sample via the Box–Muller transform.
    pub fn standard_normal(&mut self) -> f64 {
        if let Some(z) = self.spare_normal.take() {
            return z;
        }
        // Box–Muller: two uniforms -> two independent standard normals.
        let u1 = loop {
            let u = self.uniform();
            if u > 1e-300 {
                break u;
            }
        };
        let u2 = self.uniform();
        let r = (-2.0 * u1.ln()).sqrt();
        let theta = 2.0 * std::f64::consts::PI * u2;
        self.spare_normal = Some(r * theta.sin());
        r * theta.cos()
    }

    /// Normal sample with the given mean and standard deviation.
    ///
    /// # Panics
    ///
    /// Panics if `std_dev < 0`.
    pub fn normal(&mut self, mean: f64, std_dev: f64) -> f64 {
        assert!(std_dev >= 0.0, "standard deviation must be non-negative");
        mean + std_dev * self.standard_normal()
    }

    /// Student-t sample with `nu` degrees of freedom.
    ///
    /// Implemented as `Z / sqrt(V / nu)` where `Z` is standard normal and `V`
    /// is chi-square with `nu` degrees of freedom (sum of `nu` squared
    /// normals for integer `nu`, gamma-like approximation otherwise).  The
    /// heavy tails of low-`nu` Student-t distributions are how the synthetic
    /// weight generator injects the occasional outlier the paper's
    /// quantization analysis revolves around.
    ///
    /// # Panics
    ///
    /// Panics if `nu <= 0`.
    pub fn student_t(&mut self, nu: f64) -> f64 {
        assert!(nu > 0.0, "degrees of freedom must be positive");
        let z = self.standard_normal();
        let v = self.chi_square(nu);
        z / (v / nu).sqrt()
    }

    /// Chi-square sample with `nu` degrees of freedom.
    ///
    /// # Panics
    ///
    /// Panics if `nu <= 0`.
    pub fn chi_square(&mut self, nu: f64) -> f64 {
        assert!(nu > 0.0, "degrees of freedom must be positive");
        let whole = nu.floor() as usize;
        let frac = nu - whole as f64;
        let mut sum = 0.0;
        for _ in 0..whole {
            let z = self.standard_normal();
            sum += z * z;
        }
        if frac > 0.0 {
            // Fractional part approximated by scaling a squared normal; exact
            // gamma sampling is unnecessary for the distribution shapes used
            // in the synthetic generator.
            let z = self.standard_normal();
            sum += frac * z * z;
        }
        // Guard against the (astronomically unlikely) zero sample which would
        // make Student-t division blow up.
        sum.max(1e-12)
    }

    /// Laplace (double-exponential) sample with scale `b`.
    ///
    /// # Panics
    ///
    /// Panics if `b <= 0`.
    pub fn laplace(&mut self, b: f64) -> f64 {
        assert!(b > 0.0, "laplace scale must be positive");
        let u = self.uniform() - 0.5;
        -b * u.signum() * (1.0 - 2.0 * u.abs()).ln()
    }

    /// Fills a slice with standard-normal samples scaled by `std_dev`.
    pub fn fill_normal(&mut self, out: &mut [f32], mean: f64, std_dev: f64) {
        for x in out {
            *x = self.normal(mean, std_dev) as f32;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = SeededRng::new(123);
        let mut b = SeededRng::new(123);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = SeededRng::new(1);
        let mut b = SeededRng::new(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 4, "streams from different seeds should diverge");
    }

    #[test]
    fn fork_is_deterministic_and_independent() {
        let mut parent1 = SeededRng::new(9);
        let mut parent2 = SeededRng::new(9);
        let mut c1 = parent1.fork(5);
        let mut c2 = parent2.fork(5);
        assert_eq!(c1.next_u64(), c2.next_u64());
        let mut other = parent1.fork(6);
        assert_ne!(c1.next_u64(), other.next_u64());
    }

    #[test]
    fn normal_moments_are_plausible() {
        let mut rng = SeededRng::new(42);
        let n = 50_000;
        let samples: Vec<f64> = (0..n).map(|_| rng.normal(1.0, 2.0)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!((mean - 1.0).abs() < 0.05, "mean {mean}");
        assert!((var - 4.0).abs() < 0.2, "var {var}");
    }

    #[test]
    fn uniform_range_respects_bounds() {
        let mut rng = SeededRng::new(3);
        for _ in 0..1000 {
            let x = rng.uniform_range(-2.0, 3.0);
            assert!((-2.0..3.0).contains(&x));
        }
    }

    #[test]
    fn student_t_has_heavier_tails_than_normal() {
        let mut rng = SeededRng::new(7);
        let n = 40_000;
        let t_extreme = (0..n).filter(|_| rng.student_t(3.0).abs() > 4.0).count();
        let g_extreme = (0..n).filter(|_| rng.standard_normal().abs() > 4.0).count();
        assert!(
            t_extreme > g_extreme * 5,
            "student-t tails ({t_extreme}) should dominate normal tails ({g_extreme})"
        );
    }

    #[test]
    fn chi_square_mean_close_to_nu() {
        let mut rng = SeededRng::new(11);
        let n = 20_000;
        let mean = (0..n).map(|_| rng.chi_square(5.0)).sum::<f64>() / n as f64;
        assert!((mean - 5.0).abs() < 0.2, "chi-square mean {mean}");
    }

    #[test]
    fn laplace_is_symmetric() {
        let mut rng = SeededRng::new(13);
        let n = 30_000;
        let mean = (0..n).map(|_| rng.laplace(1.0)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.05, "laplace mean {mean}");
    }

    #[test]
    fn bernoulli_probability_respected() {
        let mut rng = SeededRng::new(17);
        let n = 20_000;
        let hits = (0..n).filter(|_| rng.bernoulli(0.25)).count();
        let p = hits as f64 / n as f64;
        assert!((p - 0.25).abs() < 0.02, "bernoulli estimate {p}");
    }

    #[test]
    #[should_panic(expected = "invalid uniform range")]
    fn uniform_range_rejects_inverted_bounds() {
        let mut rng = SeededRng::new(1);
        let _ = rng.uniform_range(1.0, 1.0);
    }
}
