//! Statistics used throughout the BitMoD analysis.
//!
//! Section II-C of the paper compares quantization granularities by looking
//! at the absolute maximum and the range of weight vectors normalized to their
//! standard deviation (Fig. 2), and Algorithm 1 selects special values by
//! mean-square error.  This module provides those primitives plus a few
//! generally useful metrics (SQNR, quantiles).
//!
//! ```
//! use bitmod_tensor::stats;
//!
//! let xs = [1.0f32, -4.0, 2.0, 3.0];
//! assert_eq!(stats::absmax(&xs), 4.0);
//! assert_eq!(stats::range(&xs), 7.0);
//! assert_eq!(stats::mse(&xs, &xs), 0.0);
//! // A perfect reconstruction has infinite SQNR; any error makes it finite.
//! assert!(stats::sqnr_db(&xs, &[1.0, -4.0, 2.0, 2.5]).is_finite());
//! ```

/// Absolute maximum of a slice (`max |x|`).  Returns 0 for an empty slice.
pub fn absmax(xs: &[f32]) -> f32 {
    xs.iter().fold(0.0f32, |acc, &x| acc.max(x.abs()))
}

/// Minimum value of a slice.  Returns 0 for an empty slice.
pub fn min(xs: &[f32]) -> f32 {
    xs.iter()
        .copied()
        .fold(f32::INFINITY, f32::min)
        .min(f32::INFINITY)
        .where_finite_or(0.0)
}

/// Maximum value of a slice.  Returns 0 for an empty slice.
pub fn max(xs: &[f32]) -> f32 {
    xs.iter()
        .copied()
        .fold(f32::NEG_INFINITY, f32::max)
        .where_finite_or(0.0)
}

/// Value range (`max - min`).  Returns 0 for an empty slice.
pub fn range(xs: &[f32]) -> f32 {
    if xs.is_empty() {
        0.0
    } else {
        max(xs) - min(xs)
    }
}

/// Arithmetic mean.  Returns 0 for an empty slice.
pub fn mean(xs: &[f32]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    xs.iter().map(|&x| x as f64).sum::<f64>() / xs.len() as f64
}

/// Population standard deviation.  Returns 0 for an empty slice.
pub fn std_dev(xs: &[f32]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    let m = mean(xs);
    (xs.iter().map(|&x| (x as f64 - m).powi(2)).sum::<f64>() / xs.len() as f64).sqrt()
}

/// Mean-square error between two equally sized slices.
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn mse(a: &[f32], b: &[f32]) -> f64 {
    assert_eq!(a.len(), b.len(), "mse requires equal-length slices");
    if a.is_empty() {
        return 0.0;
    }
    a.iter()
        .zip(b)
        .map(|(&x, &y)| {
            let d = x as f64 - y as f64;
            d * d
        })
        .sum::<f64>()
        / a.len() as f64
}

/// Root-mean-square error between two equally sized slices.
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn rmse(a: &[f32], b: &[f32]) -> f64 {
    mse(a, b).sqrt()
}

/// Signal-to-quantization-noise ratio in dB: `10 log10(E[x^2] / E[(x-x̂)^2])`.
///
/// Returns `f64::INFINITY` if the error is exactly zero and `0.0` if the
/// signal is empty or all-zero.
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn sqnr_db(signal: &[f32], reconstruction: &[f32]) -> f64 {
    assert_eq!(
        signal.len(),
        reconstruction.len(),
        "sqnr requires equal lengths"
    );
    if signal.is_empty() {
        return 0.0;
    }
    let p_signal = signal.iter().map(|&x| (x as f64) * (x as f64)).sum::<f64>();
    if p_signal == 0.0 {
        return 0.0;
    }
    let p_noise = signal
        .iter()
        .zip(reconstruction)
        .map(|(&x, &y)| {
            let d = x as f64 - y as f64;
            d * d
        })
        .sum::<f64>();
    if p_noise == 0.0 {
        return f64::INFINITY;
    }
    10.0 * (p_signal / p_noise).log10()
}

/// Linear-interpolation quantile `q ∈ [0, 1]` of a slice.
///
/// # Panics
///
/// Panics if `q` is outside `[0, 1]` or the slice is empty.
pub fn quantile(xs: &[f32], q: f64) -> f32 {
    assert!((0.0..=1.0).contains(&q), "quantile must be in [0,1]");
    assert!(!xs.is_empty(), "quantile of empty slice");
    let mut sorted: Vec<f32> = xs.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("NaN in quantile input"));
    let pos = q * (sorted.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    if lo == hi {
        sorted[lo]
    } else {
        let frac = (pos - lo as f64) as f32;
        sorted[lo] * (1.0 - frac) + sorted[hi] * frac
    }
}

/// Kurtosis (Fisher definition; 0 for a Gaussian).  Returns 0 for slices with
/// fewer than 4 elements or zero variance.
pub fn excess_kurtosis(xs: &[f32]) -> f64 {
    if xs.len() < 4 {
        return 0.0;
    }
    let m = mean(xs);
    let n = xs.len() as f64;
    let var = xs.iter().map(|&x| (x as f64 - m).powi(2)).sum::<f64>() / n;
    if var == 0.0 {
        return 0.0;
    }
    let m4 = xs.iter().map(|&x| (x as f64 - m).powi(4)).sum::<f64>() / n;
    m4 / (var * var) - 3.0
}

/// Summary of the per-group statistics Fig. 2 of the paper reports: the
/// absolute maximum and the range of a weight vector, both normalized by the
/// standard deviation of that vector.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NormalizedExtent {
    /// `absmax / sigma`.
    pub absmax_over_sigma: f64,
    /// `(max - min) / sigma`.
    pub range_over_sigma: f64,
}

/// Computes the normalized absolute maximum and range of a vector, as plotted
/// in Fig. 2 of the paper.  Returns zeros when the vector has no spread.
pub fn normalized_extent(xs: &[f32]) -> NormalizedExtent {
    let sigma = std_dev(xs);
    if sigma == 0.0 {
        return NormalizedExtent {
            absmax_over_sigma: 0.0,
            range_over_sigma: 0.0,
        };
    }
    NormalizedExtent {
        absmax_over_sigma: absmax(xs) as f64 / sigma,
        range_over_sigma: range(xs) as f64 / sigma,
    }
}

/// Measures how asymmetric a vector is: `|max + min| / (max - min)`, i.e. how
/// far the midpoint sits from zero relative to the range.  0 for a perfectly
/// symmetric range, approaching 1 for an entirely one-sided group.  The paper
/// motivates asymmetric data types by exactly this phenomenon in per-group
/// weight slices.
pub fn asymmetry(xs: &[f32]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    let mx = max(xs) as f64;
    let mn = min(xs) as f64;
    let r = mx - mn;
    if r == 0.0 {
        0.0
    } else {
        (mx + mn).abs() / r
    }
}

trait WhereFiniteOr {
    fn where_finite_or(self, fallback: f32) -> f32;
}

impl WhereFiniteOr for f32 {
    fn where_finite_or(self, fallback: f32) -> f32 {
        if self.is_finite() {
            self
        } else {
            fallback
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn absmax_handles_signs_and_empty() {
        assert_eq!(absmax(&[1.0, -3.0, 2.0]), 3.0);
        assert_eq!(absmax(&[]), 0.0);
    }

    #[test]
    fn min_max_range() {
        let xs = [1.0, -2.0, 5.0];
        assert_eq!(min(&xs), -2.0);
        assert_eq!(max(&xs), 5.0);
        assert_eq!(range(&xs), 7.0);
        assert_eq!(range(&[]), 0.0);
    }

    #[test]
    fn mean_and_std_dev() {
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        assert!((mean(&xs) - 5.0).abs() < 1e-12);
        assert!((std_dev(&xs) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn mse_and_rmse() {
        let a = [1.0, 2.0, 3.0];
        let b = [1.0, 4.0, 3.0];
        assert!((mse(&a, &b) - 4.0 / 3.0).abs() < 1e-12);
        assert!((rmse(&a, &b) - (4.0f64 / 3.0).sqrt()).abs() < 1e-12);
        assert_eq!(mse(&a, &a), 0.0);
    }

    #[test]
    #[should_panic(expected = "equal-length")]
    fn mse_length_mismatch_panics() {
        let _ = mse(&[1.0], &[1.0, 2.0]);
    }

    #[test]
    fn sqnr_infinite_for_exact_reconstruction() {
        let a = [1.0, -2.0, 0.5];
        assert_eq!(sqnr_db(&a, &a), f64::INFINITY);
    }

    #[test]
    fn sqnr_decreases_with_noise() {
        let a = [1.0, -2.0, 0.5, 3.0];
        let small: Vec<f32> = a.iter().map(|x| x + 0.01).collect();
        let big: Vec<f32> = a.iter().map(|x| x + 0.5).collect();
        assert!(sqnr_db(&a, &small) > sqnr_db(&a, &big));
    }

    #[test]
    fn quantile_endpoints_and_median() {
        let xs = [5.0, 1.0, 3.0, 2.0, 4.0];
        assert_eq!(quantile(&xs, 0.0), 1.0);
        assert_eq!(quantile(&xs, 1.0), 5.0);
        assert_eq!(quantile(&xs, 0.5), 3.0);
    }

    #[test]
    fn kurtosis_of_uniformish_is_negative_heavy_tail_positive() {
        let uniform: Vec<f32> = (0..1000).map(|i| i as f32 / 1000.0).collect();
        assert!(excess_kurtosis(&uniform) < 0.0);
        // A vector with one large outlier has positive excess kurtosis.
        let mut outliered = vec![0.0f32; 999];
        outliered.push(100.0);
        assert!(excess_kurtosis(&outliered) > 10.0);
    }

    #[test]
    fn normalized_extent_of_standard_gaussianish_data() {
        // For ±1 symmetric data, absmax/sigma == 1, range/sigma == 2.
        let xs = [1.0, -1.0, 1.0, -1.0];
        let e = normalized_extent(&xs);
        assert!((e.absmax_over_sigma - 1.0).abs() < 1e-9);
        assert!((e.range_over_sigma - 2.0).abs() < 1e-9);
    }

    #[test]
    fn asymmetry_zero_for_symmetric_one_for_one_sided() {
        assert_eq!(asymmetry(&[-2.0, 2.0]), 0.0);
        let one_sided = asymmetry(&[1.0, 3.0]);
        assert!(one_sided > 0.9, "one-sided asymmetry {one_sided}");
        assert_eq!(asymmetry(&[]), 0.0);
    }
}
