//! Synthetic LLM weight and activation generation.
//!
//! The paper evaluates quantization data types on real checkpoints
//! (OPT-1.3B … Llama-3-8B).  Those checkpoints are unavailable here, so the
//! reproduction substitutes synthetic weight tensors that preserve the
//! distributional facts every result in the paper depends on:
//!
//! 1. The bulk of LLM weights is Gaussian-like (Section II-C, citing \[17\],
//!    \[51\]) — modelled by a zero-mean normal component.
//! 2. Weight tensors contain heavy-tailed outliers, and at per-group
//!    granularity those outliers appear *asymmetrically* (solely positive or
//!    negative within a group) — modelled by a Student-t component plus a
//!    per-group one-sided outlier injection.
//! 3. Different channels have different scales (per-channel variance spread) —
//!    modelled by log-normal per-row scale jitter.
//! 4. Activation tensors have a few high-magnitude channels (the phenomenon
//!    SmoothQuant/AWQ exploit) — modelled by per-channel scale spikes.
//!
//! The per-model profiles differ in tail weight and outlier rate so that the
//! *relative* quantization difficulty ordering of the six LLMs is roughly
//! preserved (OPT-1.3B is by far the most outlier-prone, the Llama family the
//! most benign, Llama-3-8B harder than Llama-2 at low precision).

use crate::matrix::Matrix;
use crate::rng::SeededRng;
use serde::{Deserialize, Serialize};

/// Distributional profile of a synthetic weight tensor.
///
/// # Example
///
/// ```
/// use bitmod_tensor::{SeededRng, synthetic::WeightProfile};
///
/// let mut rng = SeededRng::new(0);
/// let w = WeightProfile::llama_like().sample_matrix(32, 128, &mut rng);
/// assert_eq!(w.len(), 32 * 128);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct WeightProfile {
    /// Standard deviation of the Gaussian bulk.
    pub sigma: f64,
    /// Fraction of elements drawn from the heavy-tailed component.
    pub outlier_rate: f64,
    /// Degrees of freedom of the Student-t outlier component (lower = heavier
    /// tails).
    pub tail_dof: f64,
    /// Scale multiplier applied to the Student-t component.
    pub outlier_scale: f64,
    /// Standard deviation (in log-space) of the per-row scale jitter.
    pub channel_scale_spread: f64,
    /// Probability that a 128-element group receives an additional one-sided
    /// outlier (drawn with a single sign), producing the asymmetric groups the
    /// paper highlights.
    pub asymmetric_group_rate: f64,
    /// Magnitude (in multiples of sigma) of the injected one-sided outlier.
    pub asymmetric_magnitude: f64,
}

impl Default for WeightProfile {
    fn default() -> Self {
        Self::llama_like()
    }
}

impl WeightProfile {
    /// Profile resembling Llama-family weight tensors: mostly Gaussian with
    /// mild heavy tails and occasional asymmetric groups.
    pub fn llama_like() -> Self {
        Self {
            sigma: 0.02,
            outlier_rate: 0.002,
            tail_dof: 5.0,
            outlier_scale: 2.0,
            channel_scale_spread: 0.25,
            asymmetric_group_rate: 0.15,
            asymmetric_magnitude: 3.5,
        }
    }

    /// Profile resembling OPT-family weight tensors: substantially heavier
    /// tails and more frequent, larger asymmetric outliers.  OPT-1.3B is the
    /// model whose perplexity collapses first at 3-bit in the paper.
    pub fn opt_like() -> Self {
        Self {
            sigma: 0.025,
            outlier_rate: 0.01,
            tail_dof: 2.5,
            outlier_scale: 3.0,
            channel_scale_spread: 0.45,
            asymmetric_group_rate: 0.35,
            asymmetric_magnitude: 5.5,
        }
    }

    /// Profile for Phi-2-like models: between OPT and Llama.
    pub fn phi_like() -> Self {
        Self {
            sigma: 0.022,
            outlier_rate: 0.005,
            tail_dof: 3.5,
            outlier_scale: 2.5,
            channel_scale_spread: 0.35,
            asymmetric_group_rate: 0.25,
            asymmetric_magnitude: 4.5,
        }
    }

    /// Profile for Yi-6B-like models: close to Llama with slightly heavier
    /// tails.
    pub fn yi_like() -> Self {
        Self {
            sigma: 0.021,
            outlier_rate: 0.003,
            tail_dof: 4.0,
            outlier_scale: 2.2,
            channel_scale_spread: 0.3,
            asymmetric_group_rate: 0.2,
            asymmetric_magnitude: 4.0,
        }
    }

    /// Profile for Llama-3-8B: the paper finds it noticeably harder to
    /// quantize at low precision than Llama-2, consistent with a wider
    /// effective dynamic range from its larger vocabulary/training budget.
    pub fn llama3_like() -> Self {
        Self {
            sigma: 0.02,
            outlier_rate: 0.004,
            tail_dof: 3.2,
            outlier_scale: 2.6,
            channel_scale_spread: 0.35,
            asymmetric_group_rate: 0.28,
            asymmetric_magnitude: 4.8,
        }
    }

    /// Samples a single weight value from the bulk/outlier mixture (without
    /// channel scaling or group asymmetry injection).
    pub fn sample_value(&self, rng: &mut SeededRng) -> f32 {
        if rng.bernoulli(self.outlier_rate) {
            (self.sigma * self.outlier_scale * rng.student_t(self.tail_dof)) as f32
        } else {
            rng.normal(0.0, self.sigma) as f32
        }
    }

    /// Samples a `rows × cols` weight matrix.
    ///
    /// Rows model output channels; each row receives a log-normal scale
    /// jitter, and 128-element groups along each row may receive a one-sided
    /// outlier according to [`asymmetric_group_rate`](Self::asymmetric_group_rate).
    pub fn sample_matrix(&self, rows: usize, cols: usize, rng: &mut SeededRng) -> Matrix {
        let mut m = Matrix::zeros(rows, cols);
        const GROUP: usize = 128;
        for r in 0..rows {
            let row_scale = (rng.normal(0.0, self.channel_scale_spread)).exp() as f32;
            let row = m.row_mut(r);
            for x in row.iter_mut() {
                *x = 0.0;
            }
            for (i, x) in row.iter_mut().enumerate() {
                let _ = i;
                *x = row_scale
                    * if rng.bernoulli(self.outlier_rate) {
                        (self.sigma * self.outlier_scale * rng.student_t(self.tail_dof)) as f32
                    } else {
                        rng.normal(0.0, self.sigma) as f32
                    };
            }
            // Inject one-sided group outliers.
            let n_groups = cols.div_ceil(GROUP);
            for g in 0..n_groups {
                if rng.bernoulli(self.asymmetric_group_rate) {
                    let sign = if rng.bernoulli(0.5) { 1.0 } else { -1.0 };
                    let start = g * GROUP;
                    let end = (start + GROUP).min(cols);
                    if end <= start {
                        continue;
                    }
                    let idx = start + rng.below(end - start);
                    let magnitude =
                        self.sigma * self.asymmetric_magnitude * (1.0 + 0.5 * rng.uniform());
                    row[idx] = (sign * magnitude) as f32 * row_scale;
                }
            }
        }
        m
    }

    /// Samples a weight vector of length `n` (single output channel).
    pub fn sample_vector(&self, n: usize, rng: &mut SeededRng) -> Vec<f32> {
        self.sample_matrix(1, n, rng).into_vec()
    }
}

/// Distributional profile of a synthetic activation tensor.
///
/// Activations in LLMs are dominated by a small number of high-magnitude
/// channels; SmoothQuant and AWQ both exploit this structure, so the
/// reproduction of Tables XI/XII needs it to exist.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ActivationProfile {
    /// Standard deviation of the typical channel.
    pub sigma: f64,
    /// Fraction of channels that are "hot" (systematically large).
    pub hot_channel_rate: f64,
    /// Scale multiplier of hot channels.
    pub hot_channel_scale: f64,
}

impl Default for ActivationProfile {
    fn default() -> Self {
        Self {
            sigma: 1.0,
            hot_channel_rate: 0.01,
            hot_channel_scale: 20.0,
        }
    }
}

impl ActivationProfile {
    /// Samples a `tokens × channels` activation matrix along with the
    /// per-channel scale vector used (handy for activation-aware methods).
    pub fn sample_matrix_with_scales(
        &self,
        tokens: usize,
        channels: usize,
        rng: &mut SeededRng,
    ) -> (Matrix, Vec<f32>) {
        let scales: Vec<f32> = (0..channels)
            .map(|_| {
                if rng.bernoulli(self.hot_channel_rate) {
                    (self.sigma * self.hot_channel_scale * (0.5 + rng.uniform())) as f32
                } else {
                    (self.sigma * (0.5 + rng.uniform())) as f32
                }
            })
            .collect();
        let mut m = Matrix::zeros(tokens, channels);
        for t in 0..tokens {
            for (c, &scale) in scales.iter().enumerate() {
                m.set(t, c, rng.normal(0.0, 1.0) as f32 * scale);
            }
        }
        (m, scales)
    }

    /// Samples a `tokens × channels` activation matrix.
    pub fn sample_matrix(&self, tokens: usize, channels: usize, rng: &mut SeededRng) -> Matrix {
        self.sample_matrix_with_scales(tokens, channels, rng).0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats;

    #[test]
    fn sample_matrix_shape_and_determinism() {
        let p = WeightProfile::llama_like();
        let a = p.sample_matrix(16, 256, &mut SeededRng::new(1));
        let b = p.sample_matrix(16, 256, &mut SeededRng::new(1));
        assert_eq!(a, b);
        assert_eq!(a.rows(), 16);
        assert_eq!(a.cols(), 256);
    }

    #[test]
    fn bulk_std_matches_profile_sigma_order_of_magnitude() {
        let p = WeightProfile::llama_like();
        let m = p.sample_matrix(8, 1024, &mut SeededRng::new(2));
        let sd = stats::std_dev(m.as_slice());
        assert!(sd > p.sigma * 0.5 && sd < p.sigma * 4.0, "std {sd}");
    }

    #[test]
    fn opt_profile_has_heavier_tails_than_llama() {
        let mut rng = SeededRng::new(3);
        let opt = WeightProfile::opt_like().sample_matrix(16, 2048, &mut rng);
        let mut rng = SeededRng::new(3);
        let llama = WeightProfile::llama_like().sample_matrix(16, 2048, &mut rng);
        let k_opt = stats::excess_kurtosis(opt.as_slice());
        let k_llama = stats::excess_kurtosis(llama.as_slice());
        assert!(
            k_opt > k_llama,
            "OPT kurtosis {k_opt} should exceed Llama kurtosis {k_llama}"
        );
    }

    #[test]
    fn asymmetric_groups_are_present() {
        let p = WeightProfile::opt_like();
        let m = p.sample_matrix(8, 1024, &mut SeededRng::new(4));
        let asymmetric = m
            .iter_groups(128)
            .filter(|(_, _, g)| stats::asymmetry(g) > 0.15)
            .count();
        assert!(asymmetric > 0, "expected some asymmetric groups");
    }

    #[test]
    fn per_group_range_is_smaller_than_per_channel_range() {
        // This is the core observation of Fig. 2 in the paper.
        let p = WeightProfile::llama_like();
        let m = p.sample_matrix(16, 2048, &mut SeededRng::new(5));
        let mut per_channel = 0.0;
        let mut n_channel = 0;
        for r in 0..m.rows() {
            per_channel += stats::normalized_extent(m.row(r)).range_over_sigma;
            n_channel += 1;
        }
        per_channel /= n_channel as f64;
        let mut per_group = 0.0;
        let mut n_group = 0;
        for (_, _, g) in m.iter_groups(128) {
            per_group += stats::normalized_extent(g).range_over_sigma;
            n_group += 1;
        }
        per_group /= n_group as f64;
        assert!(
            per_group < per_channel,
            "per-group range {per_group} should be below per-channel {per_channel}"
        );
    }

    #[test]
    fn activation_matrix_has_hot_channels() {
        let p = ActivationProfile {
            hot_channel_rate: 0.05,
            ..ActivationProfile::default()
        };
        let (m, scales) = p.sample_matrix_with_scales(64, 512, &mut SeededRng::new(6));
        let max_scale = scales.iter().cloned().fold(0.0f32, f32::max);
        let median = {
            let mut s = scales.clone();
            s.sort_by(|a, b| a.partial_cmp(b).unwrap());
            s[s.len() / 2]
        };
        assert!(
            max_scale > 5.0 * median,
            "hot channels should dominate: max {max_scale} median {median}"
        );
        assert_eq!(m.rows(), 64);
        assert_eq!(m.cols(), 512);
    }

    #[test]
    fn sample_vector_length() {
        let v = WeightProfile::default().sample_vector(300, &mut SeededRng::new(7));
        assert_eq!(v.len(), 300);
    }
}
