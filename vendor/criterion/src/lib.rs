//! Minimal stand-in for the `criterion` crate (offline build).
//!
//! Implements the benchmarking surface the workspace's `benches/` use:
//! [`Criterion::bench_function`], [`Criterion::benchmark_group`],
//! [`BenchmarkId`], [`Bencher::iter`], [`black_box`], and the
//! [`criterion_group!`] / [`criterion_main!`] macros.  Each benchmark runs
//! inside a short time-boxed measurement window and reports summary
//! statistics over its iterations — mean, min, max, and (sample) standard
//! deviation, via [`SampleStats`] — which is enough to compare hot paths,
//! judge run-to-run noise, and catch order-of-magnitude regressions
//! (`bitmod-cli bench` reuses [`SampleStats`] for its micro-benchmarks so
//! both surfaces summarize identically).
//!
//! Tuning knobs (environment variables):
//!
//! * `BITMOD_BENCH_MS` — measurement window per benchmark in milliseconds
//!   (default 300).
//!
//! ```
//! use criterion::{Criterion, black_box};
//!
//! let mut c = Criterion::default();
//! c.bench_function("sum_1k", |b| {
//!     b.iter(|| (0..1000u64).map(black_box).sum::<u64>())
//! });
//! ```

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Measurement window per benchmark.
fn measure_window() -> Duration {
    let ms = std::env::var("BITMOD_BENCH_MS")
        .ok()
        .and_then(|v| v.parse::<u64>().ok())
        .unwrap_or(300);
    Duration::from_millis(ms)
}

/// Top-level benchmark driver, mirroring `criterion::Criterion`.
#[derive(Debug, Default)]
pub struct Criterion {}

impl Criterion {
    /// Runs a single named benchmark.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_benchmark(name, &mut f);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _criterion: self,
            name: name.to_string(),
        }
    }
}

/// A group of related benchmarks sharing a name prefix.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Runs a benchmark identified by `id` with an extra `input` argument.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        I: ?Sized,
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id.label());
        run_benchmark(&label, &mut |b| f(b, input));
        self
    }

    /// Runs a named benchmark inside the group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id: BenchmarkId = id.into();
        let label = format!("{}/{}", self.name, id.label());
        run_benchmark(&label, &mut f);
        self
    }

    /// Ends the group (no-op in the shim; kept for API compatibility).
    pub fn finish(self) {}
}

/// Identifies one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    function: Option<String>,
    parameter: Option<String>,
}

impl BenchmarkId {
    /// A function name plus a parameter value.
    pub fn new(function: impl Into<String>, parameter: impl Display) -> Self {
        Self {
            function: Some(function.into()),
            parameter: Some(parameter.to_string()),
        }
    }

    /// A parameter-only id (the group name supplies the function part).
    pub fn from_parameter(parameter: impl Display) -> Self {
        Self {
            function: None,
            parameter: Some(parameter.to_string()),
        }
    }

    fn label(&self) -> String {
        match (&self.function, &self.parameter) {
            (Some(f), Some(p)) => format!("{f}/{p}"),
            (Some(f), None) => f.clone(),
            (None, Some(p)) => p.clone(),
            (None, None) => "bench".to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        Self {
            function: Some(s.to_string()),
            parameter: None,
        }
    }
}

/// Passed to the benchmark closure; [`Bencher::iter`] runs and times the
/// workload.
#[derive(Debug, Default)]
pub struct Bencher {
    samples: Vec<Duration>,
}

impl Bencher {
    /// Times `f` repeatedly inside the measurement window.
    pub fn iter<O, F>(&mut self, mut f: F)
    where
        F: FnMut() -> O,
    {
        // Warm-up: a few untimed runs (also primes caches/allocator).
        for _ in 0..3 {
            black_box(f());
        }
        let window = measure_window();
        let started = Instant::now();
        let mut samples = Vec::new();
        while started.elapsed() < window && samples.len() < 10_000 {
            let t0 = Instant::now();
            black_box(f());
            samples.push(t0.elapsed());
        }
        self.samples = samples;
    }
}

/// Summary statistics over a set of benchmark iterations, in seconds.
///
/// This is the one statistics implementation both the bench harness and
/// `bitmod-cli bench` report through, so their numbers cannot disagree in
/// method.  The standard deviation is the *sample* standard deviation
/// (`n - 1` denominator), 0 for fewer than two samples.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SampleStats {
    /// Mean seconds per iteration.
    pub mean: f64,
    /// Fastest iteration (seconds).
    pub min: f64,
    /// Slowest iteration (seconds).
    pub max: f64,
    /// Sample standard deviation (seconds).
    pub stddev: f64,
    /// Number of iterations measured.
    pub iters: usize,
}

impl SampleStats {
    /// Computes the statistics of raw per-iteration values (any unit; the
    /// output is in the same unit).
    ///
    /// # Panics
    ///
    /// Panics if `samples` is empty.
    pub fn from_values(samples: &[f64]) -> SampleStats {
        assert!(!samples.is_empty(), "no samples to summarize");
        let n = samples.len();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let min = samples.iter().copied().fold(f64::INFINITY, f64::min);
        let max = samples.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        let stddev = if n < 2 {
            0.0
        } else {
            let var = samples.iter().map(|s| (s - mean).powi(2)).sum::<f64>() / (n - 1) as f64;
            var.sqrt()
        };
        SampleStats {
            mean,
            min,
            max,
            stddev,
            iters: n,
        }
    }

    /// Computes the statistics of timed iterations, in seconds.
    ///
    /// # Panics
    ///
    /// Panics if `samples` is empty.
    pub fn from_durations(samples: &[Duration]) -> SampleStats {
        let secs: Vec<f64> = samples.iter().map(Duration::as_secs_f64).collect();
        SampleStats::from_values(&secs)
    }
}

fn run_benchmark(label: &str, f: &mut dyn FnMut(&mut Bencher)) {
    let mut bencher = Bencher::default();
    f(&mut bencher);
    if bencher.samples.is_empty() {
        println!("{label}: no samples (Bencher::iter was not called)");
        return;
    }
    let stats = SampleStats::from_durations(&bencher.samples);
    println!(
        "{label}: mean {} / min {} / max {} / stddev {} over {} iters",
        fmt_duration(Duration::from_secs_f64(stats.mean)),
        fmt_duration(Duration::from_secs_f64(stats.min)),
        fmt_duration(Duration::from_secs_f64(stats.max)),
        fmt_duration(Duration::from_secs_f64(stats.stddev)),
        stats.iters
    );
}

fn fmt_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 1_000 {
        format!("{ns} ns")
    } else if ns < 1_000_000 {
        format!("{:.2} µs", ns as f64 / 1e3)
    } else if ns < 1_000_000_000 {
        format!("{:.2} ms", ns as f64 / 1e6)
    } else {
        format!("{:.2} s", ns as f64 / 1e9)
    }
}

/// Declares a function that runs a list of benchmark functions, mirroring
/// `criterion::criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares `main` for a bench binary, mirroring `criterion::criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sample_stats_summarize_mean_min_max_stddev() {
        let stats = SampleStats::from_values(&[1.0, 2.0, 3.0, 4.0]);
        assert_eq!(stats.mean, 2.5);
        assert_eq!(stats.min, 1.0);
        assert_eq!(stats.max, 4.0);
        assert_eq!(stats.iters, 4);
        // Sample stddev of 1..4 is sqrt(5/3).
        assert!((stats.stddev - (5.0f64 / 3.0).sqrt()).abs() < 1e-12);
        // A single sample has zero spread, not NaN.
        let single = SampleStats::from_values(&[7.0]);
        assert_eq!(single.stddev, 0.0);
        assert_eq!((single.min, single.max), (7.0, 7.0));
        // Durations convert to seconds.
        let d =
            SampleStats::from_durations(&[Duration::from_millis(10), Duration::from_millis(30)]);
        assert!((d.mean - 0.020).abs() < 1e-12);
    }

    #[test]
    fn bench_function_records_samples() {
        std::env::set_var("BITMOD_BENCH_MS", "5");
        let mut c = Criterion::default();
        c.bench_function("noop", |b| b.iter(|| black_box(1 + 1)));
        let mut g = c.benchmark_group("group");
        g.bench_with_input(BenchmarkId::from_parameter(4), &4u8, |b, &x| {
            b.iter(|| black_box(x as u32 * 2))
        });
        g.finish();
    }
}
