//! Minimal stand-in for the `proptest` crate (offline build).
//!
//! Supports the subset the workspace's property tests use: the [`proptest!`]
//! macro over functions whose arguments are drawn from range strategies,
//! [`collection::vec`], [`Just`] and [`prop_oneof!`], plus the
//! `prop_assert*` macros.  Unlike real proptest there is no shrinking: each
//! test runs a fixed number of deterministically seeded cases (default 64,
//! override with `PROPTEST_CASES`) and reports the failing case's seed.
//!
//! ```
//! use proptest::prelude::*;
//!
//! proptest! {
//!     fn addition_commutes(a in 0i32..1000, b in 0i32..1000) {
//!         prop_assert_eq!(a + b, b + a);
//!     }
//! }
//! addition_commutes();
//! ```

use std::ops::{Range, RangeInclusive};

/// Everything a property-test file needs: `use proptest::prelude::*;`.
pub mod prelude {
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, Just, Strategy,
        TestCaseError,
    };
}

/// A failed property-test case.
#[derive(Debug)]
pub struct TestCaseError {
    /// Human-readable failure message.
    pub message: String,
}

impl TestCaseError {
    /// Builds a failure with the given message.
    pub fn fail(message: impl Into<String>) -> Self {
        Self {
            message: message.into(),
        }
    }
}

/// Deterministic RNG driving case generation (xorshift64*).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeds the generator; a zero seed is remapped to a fixed constant.
    pub fn new(seed: u64) -> Self {
        Self {
            state: if seed == 0 {
                0x9E37_79B9_7F4A_7C15
            } else {
                seed
            },
        }
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.state = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform integer in `[0, n)`.
    pub fn below(&mut self, n: u64) -> u64 {
        ((self.next_u64() as u128 * n as u128) >> 64) as u64
    }
}

/// A value generator: the sampling-only core of proptest's `Strategy`.
pub trait Strategy {
    /// The type of generated values.
    type Value;
    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;
}

/// A strategy that always yields a clone of its payload.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! int_strategies {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start() as i128, *self.end() as i128);
                assert!(lo <= hi, "empty strategy range");
                let span = (hi - lo + 1) as u64;
                (lo + rng.below(span) as i128) as $t
            }
        }
    )*};
}

int_strategies!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

macro_rules! float_strategies {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                self.start + (self.end - self.start) * rng.unit_f64() as $t
            }
        }
    )*};
}

float_strategies!(f32, f64);

/// Chooses uniformly among a set of equally-typed strategies — the engine
/// behind [`prop_oneof!`].
#[derive(Debug, Clone)]
pub struct OneOf<S> {
    /// The candidate strategies.
    pub options: Vec<S>,
}

impl<S: Strategy> Strategy for OneOf<S> {
    type Value = S::Value;
    fn sample(&self, rng: &mut TestRng) -> S::Value {
        assert!(
            !self.options.is_empty(),
            "prop_oneof! needs at least one option"
        );
        let idx = rng.below(self.options.len() as u64) as usize;
        self.options[idx].sample(rng)
    }
}

/// Collection strategies (`proptest::collection::vec`).
pub mod collection {
    use super::{Strategy, TestRng};

    /// A half-open range of collection sizes, like proptest's `SizeRange`.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        start: usize,
        end: usize,
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty length range");
            Self {
                start: r.start,
                end: r.end,
            }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> Self {
            Self {
                start: *r.start(),
                end: *r.end() + 1,
            }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            Self {
                start: n,
                end: n + 1,
            }
        }
    }

    /// Generates `Vec`s whose length is drawn from `len` and whose elements
    /// are drawn from `elem`.
    pub fn vec<E: Strategy>(elem: E, len: impl Into<SizeRange>) -> VecStrategy<E> {
        VecStrategy {
            elem,
            len: len.into(),
        }
    }

    /// Strategy returned by [`vec()`].
    #[derive(Debug, Clone)]
    pub struct VecStrategy<E> {
        elem: E,
        len: SizeRange,
    }

    impl<E: Strategy> Strategy for VecStrategy<E> {
        type Value = Vec<E::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<E::Value> {
            let span = (self.len.end - self.len.start) as u64;
            let n = self.len.start + rng.below(span) as usize;
            (0..n).map(|_| self.elem.sample(rng)).collect()
        }
    }
}

/// Number of cases per property (env `PROPTEST_CASES`, default 64).
pub fn cases() -> u64 {
    std::env::var("PROPTEST_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .filter(|&n| n > 0)
        .unwrap_or(64)
}

/// FNV-1a hash of the test name, making per-test seeds stable across runs.
pub fn seed_for(name: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// Defines property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` running [`cases`] seeded random cases.
#[macro_export]
macro_rules! proptest {
    ($($(#[$meta:meta])* fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let total = $crate::cases();
                let base = $crate::seed_for(stringify!($name));
                for case in 0..total {
                    let mut rng = $crate::TestRng::new(base ^ case.wrapping_mul(0x9E37_79B9_7F4A_7C15));
                    $(let $arg = $crate::Strategy::sample(&($strat), &mut rng);)+
                    let result: ::std::result::Result<(), $crate::TestCaseError> = (|| {
                        $body
                        #[allow(unreachable_code)]
                        Ok(())
                    })();
                    if let Err(e) = result {
                        panic!(
                            "property `{}` failed on case {case}/{total}: {}",
                            stringify!($name),
                            e.message
                        );
                    }
                }
            }
        )*
    };
}

/// `assert!` that fails the current property case with context.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)*)));
        }
    };
}

/// `assert_eq!` counterpart of [`prop_assert!`].
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {{
        let (lhs, rhs) = (&$a, &$b);
        $crate::prop_assert!(
            lhs == rhs,
            "assertion failed: {} == {} (left: {:?}, right: {:?})",
            stringify!($a),
            stringify!($b),
            lhs,
            rhs
        );
    }};
}

/// `assert_ne!` counterpart of [`prop_assert!`].
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {{
        let (lhs, rhs) = (&$a, &$b);
        $crate::prop_assert!(
            lhs != rhs,
            "assertion failed: {} != {} (both: {:?})",
            stringify!($a),
            stringify!($b),
            lhs
        );
    }};
}

/// Uniform choice among strategies: `prop_oneof![Just(3u8), Just(4u8)]`.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::OneOf { options: vec![$($strat),+] }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn ranges_stay_in_bounds(x in -7i32..9, y in 2u8..=5, f in -1.0f32..1.0) {
            prop_assert!((-7..9).contains(&x));
            prop_assert!((2..=5).contains(&y));
            prop_assert!((-1.0..1.0).contains(&f));
        }

        #[test]
        fn vec_lengths_respect_strategy(v in crate::collection::vec(0u8..=255, 3..10)) {
            prop_assert!(v.len() >= 3 && v.len() < 10);
        }

        #[test]
        fn oneof_picks_from_options(b in prop_oneof![Just(3u8), Just(4u8)]) {
            prop_assert!(b == 3 || b == 4);
        }
    }

    #[test]
    #[should_panic(expected = "property `always_fails` failed")]
    fn failing_property_panics_with_context() {
        proptest! {
            fn always_fails(x in 0i32..10) {
                prop_assert!(x < 0, "x was {x}");
            }
        }
        always_fails();
    }
}
