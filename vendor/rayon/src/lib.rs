//! Minimal stand-in for the `rayon` crate (offline build).
//!
//! Provides the small slice/range data-parallel surface this workspace uses:
//! `par_iter()` / `into_par_iter()` producing a [`ParIter`] whose adapters
//! (`map`, `filter`, `for_each`, …) run eagerly across OS threads via
//! `std::thread::scope`, preserving input order.  Unlike real rayon there is
//! no work-stealing between started tasks, but scheduling is *dynamic*: the
//! items are pre-split into several small blocks per worker and an atomic
//! counter hands the next unclaimed block to whichever worker finishes first,
//! so uneven per-item costs (e.g. ragged quantization rows) no longer
//! serialize on the slowest contiguous chunk.
//!
//! Thread count comes from `std::thread::available_parallelism`, overridable
//! with the familiar `RAYON_NUM_THREADS` environment variable.
//!
//! ```
//! use rayon::prelude::*;
//!
//! let squares: Vec<usize> = (0..100usize).into_par_iter().map(|x| x * x).collect();
//! assert_eq!(squares[7], 49);
//! ```

use std::ops::Range;

/// The rayon-compatible import surface: `use rayon::prelude::*;`.
pub mod prelude {
    pub use crate::{IntoParallelIterator, IntoParallelRefIterator};
}

/// Number of worker threads a parallel adapter will use.
pub fn current_num_threads() -> usize {
    if let Ok(v) = std::env::var("RAYON_NUM_THREADS") {
        if let Ok(n) = v.parse::<usize>() {
            if n > 0 {
                return n;
            }
        }
    }
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// An eager "parallel iterator": a materialized batch of items whose
/// adapters each run one ordered parallel pass.
#[derive(Debug)]
pub struct ParIter<T> {
    items: Vec<T>,
}

impl<T: Send> ParIter<T> {
    /// Applies `f` to every item in parallel, preserving order.
    pub fn map<R, F>(self, f: F) -> ParIter<R>
    where
        R: Send,
        F: Fn(T) -> R + Sync,
    {
        ParIter {
            items: parallel_map(self.items, &f),
        }
    }

    /// Keeps the items for which `f` returns true (parallel predicate
    /// evaluation, ordered output).
    pub fn filter<F>(self, f: F) -> ParIter<T>
    where
        F: Fn(&T) -> bool + Sync,
    {
        let keep = parallel_map(self.items, &|x: T| {
            let k = f(&x);
            (k, x)
        });
        ParIter {
            items: keep
                .into_iter()
                .filter(|(k, _)| *k)
                .map(|(_, x)| x)
                .collect(),
        }
    }

    /// Runs `f` on every item in parallel.
    pub fn for_each<F>(self, f: F)
    where
        F: Fn(T) + Sync,
    {
        let _ = parallel_map(self.items, &|x: T| f(x));
    }

    /// Collects the items (already computed) into any `FromIterator`
    /// container.
    pub fn collect<C: FromIterator<T>>(self) -> C {
        self.items.into_iter().collect()
    }

    /// Sums the items in input order.
    pub fn sum<S>(self) -> S
    where
        S: std::iter::Sum<T>,
    {
        self.items.into_iter().sum()
    }

    /// Number of items in the batch.
    pub fn count(self) -> usize {
        self.items.len()
    }
}

/// Conversion into a [`ParIter`] by value (`vec.into_par_iter()`,
/// `(0..n).into_par_iter()`).
pub trait IntoParallelIterator {
    /// Item type of the resulting batch.
    type Item: Send;
    /// Converts `self` into an eager parallel iterator.
    fn into_par_iter(self) -> ParIter<Self::Item>;
}

impl<T: Send> IntoParallelIterator for Vec<T> {
    type Item = T;
    fn into_par_iter(self) -> ParIter<T> {
        ParIter { items: self }
    }
}

impl IntoParallelIterator for Range<usize> {
    type Item = usize;
    fn into_par_iter(self) -> ParIter<usize> {
        ParIter {
            items: self.collect(),
        }
    }
}

impl IntoParallelIterator for Range<u64> {
    type Item = u64;
    fn into_par_iter(self) -> ParIter<u64> {
        ParIter {
            items: self.collect(),
        }
    }
}

impl IntoParallelIterator for std::ops::RangeInclusive<usize> {
    type Item = usize;
    fn into_par_iter(self) -> ParIter<usize> {
        ParIter {
            items: self.collect(),
        }
    }
}

impl<T: Send> IntoParallelIterator for ParIter<T> {
    type Item = T;
    fn into_par_iter(self) -> ParIter<T> {
        self
    }
}

/// Conversion into a [`ParIter`] of references (`slice.par_iter()`).
pub trait IntoParallelRefIterator<'a> {
    /// Reference item type of the resulting batch.
    type Item: Send;
    /// Borrowing counterpart of
    /// [`into_par_iter`](IntoParallelIterator::into_par_iter).
    fn par_iter(&'a self) -> ParIter<Self::Item>;
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for [T] {
    type Item = &'a T;
    fn par_iter(&'a self) -> ParIter<&'a T> {
        ParIter {
            items: self.iter().collect(),
        }
    }
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for Vec<T> {
    type Item = &'a T;
    fn par_iter(&'a self) -> ParIter<&'a T> {
        ParIter {
            items: self.iter().collect(),
        }
    }
}

/// Number of parallel regions currently executing.  The shim has no shared
/// worker pool, so without this guard nested `par_iter` calls (e.g. a sweep
/// fan-out whose per-point work itself parallelizes over matrix rows) would
/// oversubscribe the machine quadratically — each nesting level spawning a
/// full complement of OS threads.  Real rayon nests into one pool; the shim
/// approximates that by running nested regions sequentially on the worker
/// that reached them.
static ACTIVE_PARALLEL_REGIONS: std::sync::atomic::AtomicUsize =
    std::sync::atomic::AtomicUsize::new(0);

/// Number of work blocks handed out per worker thread.  More blocks give the
/// dynamic scheduler finer grain to balance uneven per-item costs; each block
/// claim is one atomic increment plus one uncontended mutex lock, so the
/// overhead stays negligible at this granularity.
const BLOCKS_PER_THREAD: usize = 8;

/// Ordered parallel map with dynamic scheduling: the items are pre-split into
/// `BLOCKS_PER_THREAD ×` threads contiguous blocks, and every worker claims
/// the next unprocessed block off a shared atomic counter until none remain —
/// a worker that drew cheap items simply claims more blocks instead of going
/// idle behind a slow static chunk.  Results are reassembled in input order.
/// Nested calls run sequentially (see [`ACTIVE_PARALLEL_REGIONS`]).
fn parallel_map<T, R, F>(items: Vec<T>, f: &F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Mutex;

    let n = items.len();
    let threads = current_num_threads().min(n).max(1);
    if threads <= 1 || ACTIVE_PARALLEL_REGIONS.load(Ordering::Acquire) > 0 {
        return items.into_iter().map(f).collect();
    }
    ACTIVE_PARALLEL_REGIONS.fetch_add(1, Ordering::AcqRel);
    // Pre-split into many small blocks (near-equal sizes, input order).
    let block_count = (threads * BLOCKS_PER_THREAD).min(n);
    let block_len = n.div_ceil(block_count);
    let mut blocks: Vec<Mutex<Option<Vec<T>>>> = Vec::with_capacity(block_count);
    let mut items = items;
    while !items.is_empty() {
        let rest = items.split_off(items.len().min(block_len));
        blocks.push(Mutex::new(Some(std::mem::replace(&mut items, rest))));
    }
    let outputs: Vec<Mutex<Option<Vec<R>>>> = blocks.iter().map(|_| Mutex::new(None)).collect();
    let next_block = AtomicUsize::new(0);
    std::thread::scope(|s| {
        for _ in 0..threads {
            s.spawn(|| loop {
                let b = next_block.fetch_add(1, Ordering::Relaxed);
                if b >= blocks.len() {
                    break;
                }
                let block = blocks[b]
                    .lock()
                    .expect("rayon shim: block mutex poisoned")
                    .take()
                    .expect("rayon shim: block claimed twice");
                let mapped: Vec<R> = block.into_iter().map(f).collect();
                *outputs[b]
                    .lock()
                    .expect("rayon shim: output mutex poisoned") = Some(mapped);
            });
        }
    });
    let result = outputs
        .into_iter()
        .flat_map(|m| {
            m.into_inner()
                .expect("rayon shim: output mutex poisoned")
                .expect("rayon shim: worker thread panicked")
        })
        .collect();
    ACTIVE_PARALLEL_REGIONS.fetch_sub(1, Ordering::AcqRel);
    result
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn map_preserves_order() {
        let out: Vec<usize> = (0..10_000usize).into_par_iter().map(|x| x * 2).collect();
        assert_eq!(out.len(), 10_000);
        assert!(out.iter().enumerate().all(|(i, &v)| v == i * 2));
    }

    #[test]
    fn par_iter_borrows() {
        let data = vec![1.0f64, 2.0, 3.0];
        let out: Vec<f64> = data.par_iter().map(|x| x + 1.0).collect();
        assert_eq!(out, vec![2.0, 3.0, 4.0]);
        assert_eq!(data.len(), 3); // still usable
    }

    #[test]
    fn filter_and_sum() {
        let evens: Vec<usize> = (0..100usize)
            .into_par_iter()
            .filter(|x| x % 2 == 0)
            .collect();
        assert_eq!(evens.len(), 50);
        let total: usize = (1..=100usize).into_par_iter().sum();
        assert_eq!(total, 5050);
    }

    #[test]
    fn nested_parallelism_stays_correct() {
        // Inner par_iter calls run sequentially (no pool), but results must
        // be identical to the flat computation.
        let out: Vec<usize> = (0..64usize)
            .into_par_iter()
            .map(|i| (0..100usize).into_par_iter().map(|j| i * j).sum::<usize>())
            .collect();
        assert!(out.iter().enumerate().all(|(i, &v)| v == i * 4950));
    }

    #[test]
    fn dynamic_scheduling_preserves_order_under_uneven_costs() {
        // Items whose cost varies by ~1000×: a static per-thread split would
        // still be correct, but this pins the dynamic scheduler's ordering.
        let out: Vec<u64> = (0..400u64)
            .into_par_iter()
            .map(|i| {
                if i % 89 == 0 {
                    std::thread::sleep(std::time::Duration::from_micros(300));
                }
                i * 3
            })
            .collect();
        assert!(out.iter().enumerate().all(|(i, &v)| v == i as u64 * 3));
    }

    #[test]
    fn empty_input_is_fine() {
        let out: Vec<u8> = Vec::<u8>::new().into_par_iter().map(|x| x).collect();
        assert!(out.is_empty());
    }
}
