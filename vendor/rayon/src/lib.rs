//! Minimal stand-in for the `rayon` crate (offline build).
//!
//! Provides the small slice/range data-parallel surface this workspace uses:
//! `par_iter()` / `into_par_iter()` producing a [`ParIter`] whose adapters
//! (`map`, `filter`, `for_each`, …) run eagerly across OS threads via
//! `std::thread::scope`, preserving input order.  Scheduling is
//! *work-stealing*, like real rayon: the items are pre-split into several
//! small blocks per worker, every worker gets its own deque seeded with a
//! contiguous range of block ids, and a worker that drains its deque steals
//! the back half of the first non-empty victim deque it finds — so uneven
//! per-item costs (e.g. an adaptive-search sweep point next to cheap RTN
//! points) rebalance instead of serializing on a straggler.
//!
//! Thread count comes from `std::thread::available_parallelism`, overridable
//! with the familiar `RAYON_NUM_THREADS` environment variable; the
//! workspace-specific `BITMOD_THREADS` takes precedence over both, so perf
//! runs can pin the worker count regardless of the ambient environment.
//!
//! ```
//! use rayon::prelude::*;
//!
//! let squares: Vec<usize> = (0..100usize).into_par_iter().map(|x| x * x).collect();
//! assert_eq!(squares[7], 49);
//! ```

use std::ops::Range;

/// The rayon-compatible import surface: `use rayon::prelude::*;`.
pub mod prelude {
    pub use crate::{IntoParallelIterator, IntoParallelRefIterator};
}

/// Number of worker threads a parallel adapter will use.
///
/// Resolution order: `BITMOD_THREADS`, then `RAYON_NUM_THREADS` (both must
/// parse as a positive integer to apply), then
/// `std::thread::available_parallelism`.
pub fn current_num_threads() -> usize {
    for var in ["BITMOD_THREADS", "RAYON_NUM_THREADS"] {
        if let Ok(v) = std::env::var(var) {
            if let Ok(n) = v.parse::<usize>() {
                if n > 0 {
                    return n;
                }
            }
        }
    }
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// An eager "parallel iterator": a materialized batch of items whose
/// adapters each run one ordered parallel pass.
#[derive(Debug)]
pub struct ParIter<T> {
    items: Vec<T>,
}

impl<T: Send> ParIter<T> {
    /// Applies `f` to every item in parallel, preserving order.
    pub fn map<R, F>(self, f: F) -> ParIter<R>
    where
        R: Send,
        F: Fn(T) -> R + Sync,
    {
        ParIter {
            items: parallel_map(self.items, &f),
        }
    }

    /// Keeps the items for which `f` returns true (parallel predicate
    /// evaluation, ordered output).
    pub fn filter<F>(self, f: F) -> ParIter<T>
    where
        F: Fn(&T) -> bool + Sync,
    {
        let keep = parallel_map(self.items, &|x: T| {
            let k = f(&x);
            (k, x)
        });
        ParIter {
            items: keep
                .into_iter()
                .filter(|(k, _)| *k)
                .map(|(_, x)| x)
                .collect(),
        }
    }

    /// Runs `f` on every item in parallel.
    pub fn for_each<F>(self, f: F)
    where
        F: Fn(T) + Sync,
    {
        let _ = parallel_map(self.items, &|x: T| f(x));
    }

    /// Collects the items (already computed) into any `FromIterator`
    /// container.
    pub fn collect<C: FromIterator<T>>(self) -> C {
        self.items.into_iter().collect()
    }

    /// Sums the items in input order.
    pub fn sum<S>(self) -> S
    where
        S: std::iter::Sum<T>,
    {
        self.items.into_iter().sum()
    }

    /// Number of items in the batch.
    pub fn count(self) -> usize {
        self.items.len()
    }
}

/// Conversion into a [`ParIter`] by value (`vec.into_par_iter()`,
/// `(0..n).into_par_iter()`).
pub trait IntoParallelIterator {
    /// Item type of the resulting batch.
    type Item: Send;
    /// Converts `self` into an eager parallel iterator.
    fn into_par_iter(self) -> ParIter<Self::Item>;
}

impl<T: Send> IntoParallelIterator for Vec<T> {
    type Item = T;
    fn into_par_iter(self) -> ParIter<T> {
        ParIter { items: self }
    }
}

impl IntoParallelIterator for Range<usize> {
    type Item = usize;
    fn into_par_iter(self) -> ParIter<usize> {
        ParIter {
            items: self.collect(),
        }
    }
}

impl IntoParallelIterator for Range<u64> {
    type Item = u64;
    fn into_par_iter(self) -> ParIter<u64> {
        ParIter {
            items: self.collect(),
        }
    }
}

impl IntoParallelIterator for std::ops::RangeInclusive<usize> {
    type Item = usize;
    fn into_par_iter(self) -> ParIter<usize> {
        ParIter {
            items: self.collect(),
        }
    }
}

impl<T: Send> IntoParallelIterator for ParIter<T> {
    type Item = T;
    fn into_par_iter(self) -> ParIter<T> {
        self
    }
}

/// Conversion into a [`ParIter`] of references (`slice.par_iter()`).
pub trait IntoParallelRefIterator<'a> {
    /// Reference item type of the resulting batch.
    type Item: Send;
    /// Borrowing counterpart of
    /// [`into_par_iter`](IntoParallelIterator::into_par_iter).
    fn par_iter(&'a self) -> ParIter<Self::Item>;
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for [T] {
    type Item = &'a T;
    fn par_iter(&'a self) -> ParIter<&'a T> {
        ParIter {
            items: self.iter().collect(),
        }
    }
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for Vec<T> {
    type Item = &'a T;
    fn par_iter(&'a self) -> ParIter<&'a T> {
        ParIter {
            items: self.iter().collect(),
        }
    }
}

/// Number of parallel regions currently executing.  The shim has no shared
/// worker pool, so without this guard nested `par_iter` calls (e.g. a sweep
/// fan-out whose per-point work itself parallelizes over matrix rows) would
/// oversubscribe the machine quadratically — each nesting level spawning a
/// full complement of OS threads.  Real rayon nests into one pool; the shim
/// approximates that by running nested regions sequentially on the worker
/// that reached them.
static ACTIVE_PARALLEL_REGIONS: std::sync::atomic::AtomicUsize =
    std::sync::atomic::AtomicUsize::new(0);

/// Number of work blocks seeded per worker thread.  More blocks give the
/// work-stealing scheduler finer grain to balance uneven per-item costs;
/// each block transfer is one uncontended mutex lock, so the overhead stays
/// negligible at this granularity.
const BLOCKS_PER_THREAD: usize = 8;

/// Ordered parallel map with work-stealing: the items are pre-split into
/// `BLOCKS_PER_THREAD × threads` contiguous blocks, and every worker owns a
/// deque seeded with a contiguous range of block ids.  Workers pop their own
/// deque from the front (input order, cache-warm); a worker whose deque runs
/// dry scans the others and steals the *back half* of the first non-empty
/// victim — the victim keeps the front it is about to work on, the thief
/// takes the half the victim would reach last.  A worker exits when its own
/// deque and every victim deque are empty; any block it can no longer see
/// has already been claimed by a live worker, so no work is lost.  Results
/// are reassembled in input order.  Nested calls run sequentially (see
/// [`ACTIVE_PARALLEL_REGIONS`]).
fn parallel_map<T, R, F>(items: Vec<T>, f: &F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    use std::collections::VecDeque;
    use std::sync::atomic::Ordering;
    use std::sync::Mutex;

    let n = items.len();
    let threads = current_num_threads().min(n).max(1);
    if threads <= 1 || ACTIVE_PARALLEL_REGIONS.load(Ordering::Acquire) > 0 {
        return items.into_iter().map(f).collect();
    }
    ACTIVE_PARALLEL_REGIONS.fetch_add(1, Ordering::AcqRel);
    // Pre-split into many small blocks (near-equal sizes, input order).
    let block_count = (threads * BLOCKS_PER_THREAD).min(n);
    let block_len = n.div_ceil(block_count);
    let mut blocks: Vec<Mutex<Option<Vec<T>>>> = Vec::with_capacity(block_count);
    let mut items = items;
    while !items.is_empty() {
        let rest = items.split_off(items.len().min(block_len));
        blocks.push(Mutex::new(Some(std::mem::replace(&mut items, rest))));
    }
    let outputs: Vec<Mutex<Option<Vec<R>>>> = blocks.iter().map(|_| Mutex::new(None)).collect();
    // Per-worker block-id deques, seeded with contiguous, near-equal ranges.
    let deques: Vec<Mutex<VecDeque<usize>>> = (0..threads)
        .map(|w| {
            let lo = w * blocks.len() / threads;
            let hi = (w + 1) * blocks.len() / threads;
            Mutex::new((lo..hi).collect())
        })
        .collect();
    let run_block = |b: usize| {
        let block = blocks[b]
            .lock()
            .expect("rayon shim: block mutex poisoned")
            .take()
            .expect("rayon shim: block claimed twice");
        let mapped: Vec<R> = block.into_iter().map(f).collect();
        *outputs[b]
            .lock()
            .expect("rayon shim: output mutex poisoned") = Some(mapped);
    };
    std::thread::scope(|s| {
        for w in 0..threads {
            let deques = &deques;
            let run_block = &run_block;
            s.spawn(move || 'work: loop {
                let own = deques[w]
                    .lock()
                    .expect("rayon shim: deque mutex poisoned")
                    .pop_front();
                if let Some(b) = own {
                    run_block(b);
                    continue;
                }
                // Local deque dry: steal half from the first non-empty
                // victim.  At most one deque lock is held at a time, so
                // there is no lock-ordering hazard.
                for offset in 1..threads {
                    let victim = (w + offset) % threads;
                    let mut vd = deques[victim]
                        .lock()
                        .expect("rayon shim: deque mutex poisoned");
                    let len = vd.len();
                    if len == 0 {
                        continue;
                    }
                    let mut taken = vd.split_off(len / 2);
                    drop(vd);
                    let first = taken.pop_front().expect("stole at least one block");
                    if !taken.is_empty() {
                        deques[w]
                            .lock()
                            .expect("rayon shim: deque mutex poisoned")
                            .extend(taken);
                    }
                    run_block(first);
                    continue 'work;
                }
                // Everything visible is empty; remaining blocks (if any) are
                // already executing on other workers.
                break;
            });
        }
    });
    let result = outputs
        .into_iter()
        .flat_map(|m| {
            m.into_inner()
                .expect("rayon shim: output mutex poisoned")
                .expect("rayon shim: worker thread panicked")
        })
        .collect();
    ACTIVE_PARALLEL_REGIONS.fetch_sub(1, Ordering::AcqRel);
    result
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn map_preserves_order() {
        let out: Vec<usize> = (0..10_000usize).into_par_iter().map(|x| x * 2).collect();
        assert_eq!(out.len(), 10_000);
        assert!(out.iter().enumerate().all(|(i, &v)| v == i * 2));
    }

    #[test]
    fn par_iter_borrows() {
        let data = vec![1.0f64, 2.0, 3.0];
        let out: Vec<f64> = data.par_iter().map(|x| x + 1.0).collect();
        assert_eq!(out, vec![2.0, 3.0, 4.0]);
        assert_eq!(data.len(), 3); // still usable
    }

    #[test]
    fn filter_and_sum() {
        let evens: Vec<usize> = (0..100usize)
            .into_par_iter()
            .filter(|x| x % 2 == 0)
            .collect();
        assert_eq!(evens.len(), 50);
        let total: usize = (1..=100usize).into_par_iter().sum();
        assert_eq!(total, 5050);
    }

    #[test]
    fn nested_parallelism_stays_correct() {
        // Inner par_iter calls run sequentially (no pool), but results must
        // be identical to the flat computation.
        let out: Vec<usize> = (0..64usize)
            .into_par_iter()
            .map(|i| (0..100usize).into_par_iter().map(|j| i * j).sum::<usize>())
            .collect();
        assert!(out.iter().enumerate().all(|(i, &v)| v == i * 4950));
    }

    #[test]
    fn dynamic_scheduling_preserves_order_under_uneven_costs() {
        // Items whose cost varies by ~1000×: a static per-thread split would
        // still be correct, but this pins the dynamic scheduler's ordering.
        let out: Vec<u64> = (0..400u64)
            .into_par_iter()
            .map(|i| {
                if i % 89 == 0 {
                    std::thread::sleep(std::time::Duration::from_micros(300));
                }
                i * 3
            })
            .collect();
        assert!(out.iter().enumerate().all(|(i, &v)| v == i as u64 * 3));
    }

    #[test]
    fn empty_input_is_fine() {
        let out: Vec<u8> = Vec::<u8>::new().into_par_iter().map(|x| x).collect();
        assert!(out.is_empty());
    }

    /// Serializes the tests that mutate thread-count environment variables.
    fn env_lock() -> &'static std::sync::Mutex<()> {
        static LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());
        &LOCK
    }

    #[test]
    fn bitmod_threads_overrides_rayon_num_threads() {
        let _guard = env_lock().lock().expect("env lock");
        std::env::set_var("RAYON_NUM_THREADS", "2");
        std::env::set_var("BITMOD_THREADS", "5");
        assert_eq!(crate::current_num_threads(), 5);
        // Unparseable/zero values fall through to the next source.
        std::env::set_var("BITMOD_THREADS", "0");
        assert_eq!(crate::current_num_threads(), 2);
        std::env::remove_var("BITMOD_THREADS");
        assert_eq!(crate::current_num_threads(), 2);
        std::env::remove_var("RAYON_NUM_THREADS");
    }

    #[test]
    fn work_stealing_rebalances_front_loaded_costs() {
        // Pin four workers (even on a single-core runner) and make worker
        // 0's entire seeded range ~slow: the other workers must steal from
        // it for the map to finish, and the output must still be ordered.
        let _guard = env_lock().lock().expect("env lock");
        std::env::set_var("BITMOD_THREADS", "4");
        let out: Vec<u64> = (0..256u64)
            .into_par_iter()
            .map(|i| {
                if i < 64 {
                    std::thread::sleep(std::time::Duration::from_micros(200));
                }
                i + 1000
            })
            .collect();
        std::env::remove_var("BITMOD_THREADS");
        assert!(out.iter().enumerate().all(|(i, &v)| v == i as u64 + 1000));
    }
}
