//! Minimal, dependency-free stand-in for the `serde` crate.
//!
//! The build environment has no network access, so the workspace vendors the
//! small subset of serde it actually uses instead of pulling the real crate.
//! The model is deliberately simple (closer to `miniserde` than to serde
//! proper): serialization goes through an owned [`Value`] tree rather than a
//! visitor pipeline.
//!
//! * [`Serialize`] converts a value into a [`Value`] tree.
//! * [`Deserialize`] rebuilds a value from a [`Value`] tree.
//! * `#[derive(Serialize, Deserialize)]` (from the sibling `serde_derive`
//!   shim) generates both impls for structs and enums, using the same shapes
//!   as real serde's externally-tagged default representation.
//!
//! `serde_json` (also vendored) renders a [`Value`] tree to JSON text and
//! parses JSON text back into one.
//!
//! ```
//! use serde::{Serialize, Value};
//!
//! let v = vec![1u32, 2, 3].to_value();
//! assert!(matches!(v, Value::Seq(ref s) if s.len() == 3));
//! ```

pub use serde_derive::{Deserialize, Serialize};

/// An owned, self-describing data tree — the interchange format between
/// [`Serialize`], [`Deserialize`] and the vendored `serde_json`.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null` (also used for non-finite floats, as real `serde_json`
    /// does).
    Null,
    /// A boolean.
    Bool(bool),
    /// A signed integer.
    I64(i64),
    /// An unsigned integer too large for `i64`.
    U64(u64),
    /// A floating-point number.
    F64(f64),
    /// A string.
    Str(String),
    /// An ordered sequence.
    Seq(Vec<Value>),
    /// An ordered string-keyed map (field order is preserved).
    Map(Vec<(String, Value)>),
}

impl Value {
    /// The map entries, if this is a [`Value::Map`].
    pub fn as_map(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Map(m) => Some(m),
            _ => None,
        }
    }

    /// The sequence elements, if this is a [`Value::Seq`].
    pub fn as_seq(&self) -> Option<&[Value]> {
        match self {
            Value::Seq(s) => Some(s),
            _ => None,
        }
    }

    /// The string contents, if this is a [`Value::Str`].
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Numeric contents coerced to `f64` (`Null` maps to NaN, mirroring the
    /// serializer's NaN → `null` convention).
    pub fn as_f64(&self) -> Option<f64> {
        match *self {
            Value::I64(x) => Some(x as f64),
            Value::U64(x) => Some(x as f64),
            Value::F64(x) => Some(x),
            Value::Null => Some(f64::NAN),
            _ => None,
        }
    }

    /// Numeric contents as `i64`, if exactly representable.
    pub fn as_i64(&self) -> Option<i64> {
        match *self {
            Value::I64(x) => Some(x),
            Value::U64(x) => i64::try_from(x).ok(),
            Value::F64(x) if x.fract() == 0.0 && x.abs() < 9.0e18 => Some(x as i64),
            _ => None,
        }
    }

    /// Numeric contents as `u64`, if exactly representable.
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Value::I64(x) => u64::try_from(x).ok(),
            Value::U64(x) => Some(x),
            Value::F64(x) if x.fract() == 0.0 && (0.0..1.9e19).contains(&x) => Some(x as u64),
            _ => None,
        }
    }

    /// The boolean contents, if this is a [`Value::Bool`].
    pub fn as_bool(&self) -> Option<bool> {
        match *self {
            Value::Bool(b) => Some(b),
            _ => None,
        }
    }
}

/// Error raised when a [`Value`] tree cannot be converted back into a Rust
/// value.
#[derive(Debug, Clone)]
pub struct Error {
    msg: String,
}

impl Error {
    /// An error with a custom message.
    pub fn new(msg: impl Into<String>) -> Self {
        Self { msg: msg.into() }
    }

    /// "expected X while deserializing T".
    pub fn expected(what: &str, ty: &str) -> Self {
        Self::new(format!("expected {what} while deserializing {ty}"))
    }

    /// An enum payload named a variant the type does not have.
    pub fn unknown_variant(ty: &str, variant: &str) -> Self {
        Self::new(format!("unknown variant `{variant}` for {ty}"))
    }

    /// A struct payload is missing a required field.
    pub fn missing_field(ty: &str, field: &str) -> Self {
        Self::new(format!("missing field `{field}` for {ty}"))
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.msg)
    }
}

impl std::error::Error for Error {}

/// Serialization into a [`Value`] tree.
pub trait Serialize {
    /// Converts `self` into a [`Value`].
    fn to_value(&self) -> Value;
}

/// Deserialization from a [`Value`] tree.
pub trait Deserialize: Sized {
    /// Rebuilds `Self` from a [`Value`].
    fn from_value(v: &Value) -> Result<Self, Error>;
}

/// Looks up `key` in a struct payload and deserializes it — used by the
/// derive-generated code.
pub fn from_map<T: Deserialize>(m: &[(String, Value)], key: &str, ty: &str) -> Result<T, Error> {
    match m.iter().find(|(k, _)| k == key) {
        Some((_, v)) => T::from_value(v),
        None => Err(Error::missing_field(ty, key)),
    }
}

// --- primitive impls -------------------------------------------------------

macro_rules! impl_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value { Value::I64(*self as i64) }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let x = v.as_i64().ok_or_else(|| Error::expected("integer", stringify!($t)))?;
                <$t>::try_from(x).map_err(|_| Error::expected("in-range integer", stringify!($t)))
            }
        }
    )*};
}

macro_rules! impl_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value { Value::U64(*self as u64) }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let x = v.as_u64().ok_or_else(|| Error::expected("unsigned integer", stringify!($t)))?;
                <$t>::try_from(x).map_err(|_| Error::expected("in-range integer", stringify!($t)))
            }
        }
    )*};
}

impl_signed!(i8, i16, i32, i64, isize);
impl_unsigned!(u8, u16, u32, u64, usize);

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::F64(*self)
    }
}

impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_f64().ok_or_else(|| Error::expected("number", "f64"))
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::F64(*self as f64)
    }
}

impl Deserialize for f32 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Ok(v.as_f64().ok_or_else(|| Error::expected("number", "f32"))? as f32)
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_bool().ok_or_else(|| Error::expected("bool", "bool"))
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Deserialize for char {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let s = v
            .as_str()
            .ok_or_else(|| Error::expected("string", "char"))?;
        let mut it = s.chars();
        match (it.next(), it.next()) {
            (Some(c), None) => Ok(c),
            _ => Err(Error::expected("single-character string", "char")),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Ok(v.as_str()
            .ok_or_else(|| Error::expected("string", "String"))?
            .to_string())
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Deserialize for &'static str {
    /// Deserializing into `&'static str` leaks the string — acceptable for
    /// this shim's use case (small, static-like config labels).
    fn from_value(v: &Value) -> Result<Self, Error> {
        let s = v
            .as_str()
            .ok_or_else(|| Error::expected("string", "&str"))?;
        Ok(Box::leak(s.to_string().into_boxed_str()))
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(|x| x.to_value()).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_seq()
            .ok_or_else(|| Error::expected("sequence", "Vec"))?
            .iter()
            .map(T::from_value)
            .collect()
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(|x| x.to_value()).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(|x| x.to_value()).collect())
    }
}

impl<T: Deserialize, const N: usize> Deserialize for [T; N] {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let seq = v
            .as_seq()
            .ok_or_else(|| Error::expected("sequence", "array"))?;
        if seq.len() != N {
            return Err(Error::expected("sequence of exact length", "array"));
        }
        let items: Result<Vec<T>, Error> = seq.iter().map(T::from_value).collect();
        items?
            .try_into()
            .map_err(|_| Error::expected("sequence of exact length", "array"))
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(x) => x.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        T::from_value(v).map(Box::new)
    }
}

macro_rules! impl_tuple {
    ($(($($n:tt $t:ident),+))*) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn to_value(&self) -> Value {
                Value::Seq(vec![$(self.$n.to_value()),+])
            }
        }
        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let seq = v.as_seq().ok_or_else(|| Error::expected("sequence", "tuple"))?;
                let expected = [$( stringify!($n) ),+].len();
                if seq.len() != expected {
                    return Err(Error::expected("tuple-length sequence", "tuple"));
                }
                Ok(($( $t::from_value(&seq[$n])? ,)+))
            }
        }
    )*};
}

impl_tuple! {
    (0 A)
    (0 A, 1 B)
    (0 A, 1 B, 2 C)
    (0 A, 1 B, 2 C, 3 D)
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Ok(v.clone())
    }
}
