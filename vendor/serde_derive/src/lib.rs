//! `#[derive(Serialize, Deserialize)]` for the vendored serde shim.
//!
//! The build environment has no network access, so this crate re-implements
//! the two derive macros from scratch on top of `proc_macro` alone — no
//! `syn`, no `quote`.  The item is parsed with a small hand-rolled token
//! walker; the generated impl is assembled as a string and re-parsed into a
//! `TokenStream`.
//!
//! Supported shapes (everything the workspace derives on):
//!
//! * structs with named fields, tuple structs, unit structs;
//! * enums with unit, tuple and struct variants (externally tagged, like
//!   real serde's default);
//! * plain type parameters (bounds are added per derived trait).
//!
//! Lifetimes, const generics and `where` clauses are intentionally not
//! supported and produce a compile-time panic with a clear message.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Field layout of a struct or enum variant.
enum Fields {
    Unit,
    Named(Vec<String>),
    Tuple(usize),
}

/// One enum variant.
struct Variant {
    name: String,
    fields: Fields,
}

/// The parsed item body.
enum Body {
    Struct(Fields),
    Enum(Vec<Variant>),
}

/// The parsed derive input.
struct Input {
    name: String,
    type_params: Vec<String>,
    body: Body,
}

/// Derives `serde::Serialize` (Value-tree serialization).
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_input(input);
    gen_serialize(&item)
        .parse()
        .expect("serde_derive: generated invalid Serialize impl")
}

/// Derives `serde::Deserialize` (Value-tree deserialization).
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_input(input);
    gen_deserialize(&item)
        .parse()
        .expect("serde_derive: generated invalid Deserialize impl")
}

// --- parsing ---------------------------------------------------------------

fn parse_input(ts: TokenStream) -> Input {
    let tokens: Vec<TokenTree> = ts.into_iter().collect();
    let mut i = 0;

    // Skip attributes, doc comments and visibility until `struct` / `enum`.
    let is_enum = loop {
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => i += 2,
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                i += 1;
                if let Some(TokenTree::Group(g)) = tokens.get(i) {
                    if g.delimiter() == Delimiter::Parenthesis {
                        i += 1;
                    }
                }
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "struct" => break false,
            Some(TokenTree::Ident(id)) if id.to_string() == "enum" => break true,
            Some(_) => i += 1,
            None => panic!("serde_derive: expected `struct` or `enum`"),
        }
    };
    i += 1;

    let name = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        _ => panic!("serde_derive: expected item name"),
    };
    i += 1;

    // Generic parameter list.
    let mut type_params = Vec::new();
    if matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        let mut depth = 0i32;
        let mut expect_param = false;
        loop {
            match tokens.get(i) {
                Some(TokenTree::Punct(p)) if p.as_char() == '<' => {
                    depth += 1;
                    if depth == 1 {
                        expect_param = true;
                    }
                }
                Some(TokenTree::Punct(p)) if p.as_char() == '>' => {
                    depth -= 1;
                    if depth == 0 {
                        i += 1;
                        break;
                    }
                }
                Some(TokenTree::Punct(p)) if p.as_char() == ',' && depth == 1 => {
                    expect_param = true;
                }
                Some(TokenTree::Punct(p)) if p.as_char() == ':' && depth == 1 => {
                    expect_param = false;
                }
                Some(TokenTree::Punct(p)) if p.as_char() == '\'' => {
                    panic!("serde_derive shim: lifetimes on derived types are not supported");
                }
                Some(TokenTree::Ident(id)) if depth == 1 && expect_param => {
                    let s = id.to_string();
                    if s == "const" {
                        panic!("serde_derive shim: const generics are not supported");
                    }
                    type_params.push(s);
                    expect_param = false;
                }
                Some(_) => {}
                None => panic!("serde_derive: unterminated generic parameter list"),
            }
            i += 1;
        }
    }

    if matches!(tokens.get(i), Some(TokenTree::Ident(id)) if id.to_string() == "where") {
        panic!("serde_derive shim: `where` clauses are not supported");
    }

    let body = if is_enum {
        match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Body::Enum(parse_variants(g.stream()))
            }
            _ => panic!("serde_derive: expected enum body"),
        }
    } else {
        match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Body::Struct(Fields::Named(parse_named_fields(g.stream())))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Body::Struct(Fields::Tuple(tuple_arity(g.stream())))
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => Body::Struct(Fields::Unit),
            _ => panic!("serde_derive: expected struct body"),
        }
    };

    Input {
        name,
        type_params,
        body,
    }
}

/// Parses `vis name: Type, ...` — returns the field names in order.
fn parse_named_fields(ts: TokenStream) -> Vec<String> {
    let tokens: Vec<TokenTree> = ts.into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        // Attributes / doc comments.
        while matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '#') {
            i += 2;
        }
        // Visibility.
        if matches!(tokens.get(i), Some(TokenTree::Ident(id)) if id.to_string() == "pub") {
            i += 1;
            if let Some(TokenTree::Group(g)) = tokens.get(i) {
                if g.delimiter() == Delimiter::Parenthesis {
                    i += 1;
                }
            }
        }
        let Some(TokenTree::Ident(id)) = tokens.get(i) else {
            break;
        };
        fields.push(id.to_string());
        i += 1;
        assert!(
            matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == ':'),
            "serde_derive: expected `:` after field name"
        );
        i += 1;
        // Skip the type: everything up to the next comma at angle depth 0.
        let mut depth = 0i32;
        while i < tokens.len() {
            match tokens.get(i) {
                Some(TokenTree::Punct(p)) if p.as_char() == '<' => depth += 1,
                Some(TokenTree::Punct(p)) if p.as_char() == '>' && depth > 0 => depth -= 1,
                Some(TokenTree::Punct(p)) if p.as_char() == ',' && depth == 0 => {
                    i += 1;
                    break;
                }
                _ => {}
            }
            i += 1;
        }
    }
    fields
}

/// Number of fields in a tuple-struct / tuple-variant parenthesis group.
fn tuple_arity(ts: TokenStream) -> usize {
    let mut arity = 0;
    let mut has_tokens = false;
    let mut last_was_comma = false;
    let mut depth = 0i32;
    for tok in ts {
        match &tok {
            TokenTree::Punct(p) if p.as_char() == '<' => {
                depth += 1;
                has_tokens = true;
                last_was_comma = false;
            }
            TokenTree::Punct(p) if p.as_char() == '>' && depth > 0 => {
                depth -= 1;
                last_was_comma = false;
            }
            TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => {
                arity += 1;
                last_was_comma = true;
            }
            _ => {
                has_tokens = true;
                last_was_comma = false;
            }
        }
    }
    if has_tokens && !last_was_comma {
        arity += 1;
    } else if !has_tokens {
        arity = 0;
    }
    arity
}

/// Parses enum variants: `Name`, `Name(T, ..)`, `Name { f: T, .. }`,
/// optionally with `= discriminant`.
fn parse_variants(ts: TokenStream) -> Vec<Variant> {
    let tokens: Vec<TokenTree> = ts.into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        while matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '#') {
            i += 2;
        }
        let Some(TokenTree::Ident(id)) = tokens.get(i) else {
            break;
        };
        let name = id.to_string();
        i += 1;
        let fields = match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let f = Fields::Tuple(tuple_arity(g.stream()));
                i += 1;
                f
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let f = Fields::Named(parse_named_fields(g.stream()));
                i += 1;
                f
            }
            _ => Fields::Unit,
        };
        // Skip an optional `= discriminant`, then the separating comma.
        let mut depth = 0i32;
        while i < tokens.len() {
            match tokens.get(i) {
                Some(TokenTree::Punct(p)) if p.as_char() == '<' => depth += 1,
                Some(TokenTree::Punct(p)) if p.as_char() == '>' && depth > 0 => depth -= 1,
                Some(TokenTree::Punct(p)) if p.as_char() == ',' && depth == 0 => {
                    i += 1;
                    break;
                }
                _ => {}
            }
            i += 1;
        }
        variants.push(Variant { name, fields });
    }
    variants
}

// --- code generation -------------------------------------------------------

/// `impl<T: bound, ..> trait_path for Name<T, ..>` header (or the
/// non-generic form).
fn impl_header(input: &Input, trait_path: &str, bound: &str) -> String {
    if input.type_params.is_empty() {
        format!("impl {trait_path} for {} ", input.name)
    } else {
        let bounded: Vec<String> = input
            .type_params
            .iter()
            .map(|p| format!("{p}: {bound}"))
            .collect();
        let args = input.type_params.join(", ");
        format!(
            "impl<{}> {trait_path} for {}<{args}> ",
            bounded.join(", "),
            input.name
        )
    }
}

fn gen_serialize(input: &Input) -> String {
    let name = &input.name;
    let body = match &input.body {
        Body::Struct(Fields::Unit) => "::serde::Value::Map(Vec::new())".to_string(),
        Body::Struct(Fields::Named(fields)) => ser_named_fields(fields, "&self."),
        Body::Struct(Fields::Tuple(1)) => "::serde::Serialize::to_value(&self.0)".to_string(),
        Body::Struct(Fields::Tuple(n)) => {
            let items: Vec<String> = (0..*n)
                .map(|k| format!("::serde::Serialize::to_value(&self.{k})"))
                .collect();
            format!("::serde::Value::Seq(vec![{}])", items.join(", "))
        }
        Body::Enum(variants) => {
            let mut arms = String::new();
            for v in variants {
                let vn = &v.name;
                match &v.fields {
                    Fields::Unit => arms.push_str(&format!(
                        "{name}::{vn} => ::serde::Value::Str(String::from(\"{vn}\")),\n"
                    )),
                    Fields::Tuple(1) => arms.push_str(&format!(
                        "{name}::{vn}(f0) => ::serde::Value::Map(vec![(String::from(\"{vn}\"), \
                         ::serde::Serialize::to_value(f0))]),\n"
                    )),
                    Fields::Tuple(n) => {
                        let pats: Vec<String> = (0..*n).map(|k| format!("f{k}")).collect();
                        let items: Vec<String> = (0..*n)
                            .map(|k| format!("::serde::Serialize::to_value(f{k})"))
                            .collect();
                        arms.push_str(&format!(
                            "{name}::{vn}({}) => ::serde::Value::Map(vec![(String::from(\"{vn}\"), \
                             ::serde::Value::Seq(vec![{}]))]),\n",
                            pats.join(", "),
                            items.join(", ")
                        ));
                    }
                    Fields::Named(fields) => {
                        let pats = fields.join(", ");
                        let inner = ser_named_fields(fields, "");
                        arms.push_str(&format!(
                            "{name}::{vn} {{ {pats} }} => ::serde::Value::Map(vec![\
                             (String::from(\"{vn}\"), {inner})]),\n"
                        ));
                    }
                }
            }
            format!("match self {{\n{arms}}}")
        }
    };
    format!(
        "{}{{\n fn to_value(&self) -> ::serde::Value {{\n {body}\n }}\n}}",
        impl_header(input, "::serde::Serialize", "::serde::Serialize")
    )
}

/// `Value::Map` construction for a list of named fields; `prefix` is
/// `"&self."` for structs and `""` for match-bound variant fields.
fn ser_named_fields(fields: &[String], prefix: &str) -> String {
    let items: Vec<String> = fields
        .iter()
        .map(|f| {
            let access = if prefix.is_empty() {
                f.clone()
            } else {
                format!("{prefix}{f}")
            };
            format!("(String::from(\"{f}\"), ::serde::Serialize::to_value({access}))")
        })
        .collect();
    format!("::serde::Value::Map(vec![{}])", items.join(", "))
}

fn gen_deserialize(input: &Input) -> String {
    let name = &input.name;
    let body = match &input.body {
        Body::Struct(Fields::Unit) => format!("let _ = v; Ok({name})"),
        Body::Struct(Fields::Named(fields)) => {
            let inits: Vec<String> = fields
                .iter()
                .map(|f| format!("{f}: ::serde::from_map(m, \"{f}\", \"{name}\")?"))
                .collect();
            format!(
                "let m = v.as_map().ok_or_else(|| ::serde::Error::expected(\"map\", \"{name}\"))?;\n\
                 Ok({name} {{ {} }})",
                inits.join(", ")
            )
        }
        Body::Struct(Fields::Tuple(1)) => {
            format!("Ok({name}(::serde::Deserialize::from_value(v)?))")
        }
        Body::Struct(Fields::Tuple(n)) => {
            let items: Vec<String> = (0..*n)
                .map(|k| format!("::serde::Deserialize::from_value(&seq[{k}])?"))
                .collect();
            format!(
                "let seq = v.as_seq().ok_or_else(|| ::serde::Error::expected(\"sequence\", \"{name}\"))?;\n\
                 if seq.len() != {n} {{ return Err(::serde::Error::expected(\"sequence of length {n}\", \"{name}\")); }}\n\
                 Ok({name}({}))",
                items.join(", ")
            )
        }
        Body::Enum(variants) => {
            let mut unit_arms = String::new();
            let mut data_arms = String::new();
            for v in variants {
                let vn = &v.name;
                match &v.fields {
                    Fields::Unit => unit_arms.push_str(&format!("\"{vn}\" => Ok({name}::{vn}),\n")),
                    Fields::Tuple(1) => data_arms.push_str(&format!(
                        "\"{vn}\" => Ok({name}::{vn}(::serde::Deserialize::from_value(val)?)),\n"
                    )),
                    Fields::Tuple(n) => {
                        let items: Vec<String> = (0..*n)
                            .map(|k| format!("::serde::Deserialize::from_value(&seq[{k}])?"))
                            .collect();
                        data_arms.push_str(&format!(
                            "\"{vn}\" => {{\n\
                             let seq = val.as_seq().ok_or_else(|| ::serde::Error::expected(\"sequence\", \"{name}::{vn}\"))?;\n\
                             if seq.len() != {n} {{ return Err(::serde::Error::expected(\"sequence of length {n}\", \"{name}::{vn}\")); }}\n\
                             Ok({name}::{vn}({}))\n}},\n",
                            items.join(", ")
                        ));
                    }
                    Fields::Named(fields) => {
                        let inits: Vec<String> = fields
                            .iter()
                            .map(|f| {
                                format!("{f}: ::serde::from_map(fm, \"{f}\", \"{name}::{vn}\")?")
                            })
                            .collect();
                        data_arms.push_str(&format!(
                            "\"{vn}\" => {{\n\
                             let fm = val.as_map().ok_or_else(|| ::serde::Error::expected(\"map\", \"{name}::{vn}\"))?;\n\
                             Ok({name}::{vn} {{ {} }})\n}},\n",
                            inits.join(", ")
                        ));
                    }
                }
            }
            format!(
                "match v {{\n\
                 ::serde::Value::Str(s) => match s.as_str() {{\n\
                 {unit_arms}\
                 other => Err(::serde::Error::unknown_variant(\"{name}\", other)),\n\
                 }},\n\
                 ::serde::Value::Map(m) if m.len() == 1 => {{\n\
                 let (k, val) = &m[0];\n\
                 let _ = val;\n\
                 match k.as_str() {{\n\
                 {data_arms}\
                 other => Err(::serde::Error::unknown_variant(\"{name}\", other)),\n\
                 }}\n\
                 }},\n\
                 _ => Err(::serde::Error::expected(\"string or single-entry map\", \"{name}\")),\n\
                 }}"
            )
        }
    };
    format!(
        "{}{{\n fn from_value(v: &::serde::Value) -> Result<Self, ::serde::Error> {{\n {body}\n }}\n}}",
        impl_header(input, "::serde::Deserialize", "::serde::Deserialize")
    )
}
