//! Minimal stand-in for the `serde_json` crate (offline build).
//!
//! Serializes the vendored `serde` [`Value`] tree to JSON text and parses
//! JSON text back.  Mirrors real `serde_json` behavior where it matters for
//! this workspace: 2-space pretty indentation, non-finite floats rendered as
//! `null`, and numbers parsed into the narrowest of `i64`/`u64`/`f64`.
//!
//! ```
//! let json = serde_json::to_string(&vec![1u32, 2, 3]).unwrap();
//! assert_eq!(json, "[1,2,3]");
//! let back: Vec<u32> = serde_json::from_str(&json).unwrap();
//! assert_eq!(back, vec![1, 2, 3]);
//! ```

pub use serde::Value;
use serde::{Deserialize, Serialize};

/// Serialization or parse error.
#[derive(Debug, Clone)]
pub struct Error {
    msg: String,
}

impl Error {
    fn new(msg: impl Into<String>) -> Self {
        Self { msg: msg.into() }
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.msg)
    }
}

impl std::error::Error for Error {}

impl From<serde::Error> for Error {
    fn from(e: serde::Error) -> Self {
        Self::new(e.to_string())
    }
}

/// Serializes `value` to a compact JSON string.
pub fn to_string<T: Serialize>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), None, 0);
    Ok(out)
}

/// Serializes `value` to a pretty-printed JSON string (2-space indent).
pub fn to_string_pretty<T: Serialize>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), Some(2), 0);
    Ok(out)
}

/// Converts any serializable value into a [`Value`] tree.
pub fn to_value<T: Serialize>(value: &T) -> Value {
    value.to_value()
}

/// Rebuilds a typed value from a [`Value`] tree.
pub fn from_value<T: Deserialize>(v: &Value) -> Result<T, Error> {
    Ok(T::from_value(v)?)
}

/// Parses a JSON string into a typed value.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let v = parse_value(s)?;
    Ok(T::from_value(&v)?)
}

// --- writer ----------------------------------------------------------------

fn write_value(out: &mut String, v: &Value, indent: Option<usize>, level: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::I64(x) => out.push_str(&x.to_string()),
        Value::U64(x) => out.push_str(&x.to_string()),
        Value::F64(x) => {
            if x.is_finite() {
                // Like serde_json/ryu: always distinguishable from an int.
                if x.fract() == 0.0 && x.abs() < 1.0e15 {
                    out.push_str(&format!("{x:.1}"));
                } else {
                    out.push_str(&format!("{x}"));
                }
            } else {
                out.push_str("null");
            }
        }
        Value::Str(s) => write_escaped(out, s),
        Value::Seq(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, level + 1);
                write_value(out, item, indent, level + 1);
            }
            newline_indent(out, indent, level);
            out.push(']');
        }
        Value::Map(entries) => {
            if entries.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, val)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, level + 1);
                write_escaped(out, k);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, val, indent, level + 1);
            }
            newline_indent(out, indent, level);
            out.push('}');
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, level: usize) {
    if let Some(width) = indent {
        out.push('\n');
        out.extend(std::iter::repeat_n(' ', width * level));
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

// --- parser ----------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

/// Parses a complete JSON document into a [`Value`].
pub fn parse_value(s: &str) -> Result<Value, Error> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::new(format!("trailing characters at byte {}", p.pos)));
    }
    Ok(v)
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::new(format!(
                "expected `{}` at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn eat_keyword(&mut self, kw: &str) -> bool {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            true
        } else {
            false
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'n') if self.eat_keyword("null") => Ok(Value::Null),
            Some(b't') if self.eat_keyword("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.eat_keyword("false") => Ok(Value::Bool(false)),
            Some(b'"') => self.string().map(Value::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.number(),
            _ => Err(Error::new(format!("unexpected input at byte {}", self.pos))),
        }
    }

    fn array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Seq(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Seq(items));
                }
                _ => {
                    return Err(Error::new(format!(
                        "expected `,` or `]` at byte {}",
                        self.pos
                    )))
                }
            }
        }
    }

    fn object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Map(entries));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value()?;
            entries.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Map(entries));
                }
                _ => {
                    return Err(Error::new(format!(
                        "expected `,` or `}}` at byte {}",
                        self.pos
                    )))
                }
            }
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(Error::new("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b't') => out.push('\t'),
                        Some(b'r') => out.push('\r'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            self.pos += 1; // the 'u'
                            let hi = self.hex4()?;
                            let c = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair: a second `\uXXXX` must follow.
                                if !self.eat_keyword("\\u") {
                                    return Err(Error::new("unpaired surrogate"));
                                }
                                let lo = self.hex4()?;
                                let c = 0x10000
                                    + ((hi - 0xD800) << 10)
                                    + (lo.wrapping_sub(0xDC00) & 0x3FF);
                                char::from_u32(c).ok_or_else(|| Error::new("bad surrogate pair"))?
                            } else {
                                char::from_u32(hi).ok_or_else(|| Error::new("bad \\u escape"))?
                            };
                            out.push(c);
                            continue;
                        }
                        _ => return Err(Error::new("bad escape sequence")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Copy one UTF-8 character.
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest)
                        .map_err(|_| Error::new("invalid UTF-8 in string"))?;
                    let c = s.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    /// Consumes 4 hex digits (the caller has already consumed the `\u`).
    fn hex4(&mut self) -> Result<u32, Error> {
        let mut x = 0u32;
        for _ in 0..4 {
            let b = self
                .peek()
                .ok_or_else(|| Error::new("truncated \\u escape"))?;
            let d = (b as char)
                .to_digit(16)
                .ok_or_else(|| Error::new("bad hex digit in \\u escape"))?;
            x = x * 16 + d;
            self.pos += 1;
        }
        Ok(x)
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        if !is_float {
            if let Ok(x) = text.parse::<i64>() {
                return Ok(Value::I64(x));
            }
            if let Ok(x) = text.parse::<u64>() {
                return Ok(Value::U64(x));
            }
        }
        text.parse::<f64>()
            .map(Value::F64)
            .map_err(|_| Error::new(format!("invalid number `{text}`")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_scalars() {
        assert_eq!(to_string(&true).unwrap(), "true");
        assert_eq!(to_string(&-5i32).unwrap(), "-5");
        assert_eq!(to_string(&1.5f64).unwrap(), "1.5");
        assert_eq!(to_string(&2.0f64).unwrap(), "2.0");
        assert_eq!(to_string(&f64::NAN).unwrap(), "null");
        assert_eq!(to_string(&"a\"b\n").unwrap(), "\"a\\\"b\\n\"");
    }

    #[test]
    fn roundtrip_containers() {
        let v: Vec<Vec<u8>> = vec![vec![1, 2], vec![]];
        let json = to_string(&v).unwrap();
        assert_eq!(json, "[[1,2],[]]");
        let back: Vec<Vec<u8>> = from_str(&json).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn pretty_printing_indents_by_two() {
        let json = to_string_pretty(&vec![1u8]).unwrap();
        assert_eq!(json, "[\n  1\n]");
    }

    #[test]
    fn parses_nested_objects_and_unicode() {
        let v = parse_value(r#"{"k": [1, -2.5, "A"], "n": null}"#).unwrap();
        let m = v.as_map().unwrap();
        assert_eq!(m[0].0, "k");
        let seq = m[0].1.as_seq().unwrap();
        assert_eq!(seq[0].as_i64(), Some(1));
        assert_eq!(seq[1].as_f64(), Some(-2.5));
        assert_eq!(seq[2].as_str(), Some("A"));
        assert_eq!(m[1].1, Value::Null);
    }
}
